//! Static basic-block discovery over an NP32 program.
//!
//! The paper's individual-packet analyses (§V-C) are phrased in terms of
//! basic blocks: block execution probability (Fig. 7) and the packet-coverage
//! curve over blocks (Fig. 8). Blocks are derived from the program text with
//! the classic leader rule:
//!
//! * the first instruction is a leader,
//! * every static branch/jump target is a leader,
//! * every instruction following a control transfer (branch, jump, `sys`,
//!   `halt`) is a leader.
//!
//! Indirect jumps (`jr`/`jalr`) have no static target, but in code produced
//! by [`npasm`](https://crates.io) they only ever return to a call site, and
//! call-return sites are leaders because `jal` ends the preceding block.
//!
//! On top of the partition, [`BlockTable`] predecodes each block into a
//! *superblock* entry — a fused statistics delta, statically-classified
//! memory-access groups, and resolved successor links — that the counts-only
//! interpreter's block engine (`Cpu::exec_blocks`) retires in one shot
//! instead of per instruction. See DESIGN.md ("Superblock engine").

use std::cell::{Cell, RefCell, RefMut};
use std::ops::Range;

use crate::cpu::Program;
use crate::isa::{Op, OpClass};
use crate::trace::{TraceParams, TraceState, TraceStats};
use crate::uarch::OpMix;
use crate::util::BitSet;

/// The partition of a program into basic blocks.
#[derive(Debug, Clone)]
pub struct BlockMap {
    /// Sorted leader instruction indices; block `b` spans
    /// `leaders[b] .. leaders[b + 1]`.
    leaders: Vec<usize>,
    /// Per-instruction block id.
    block_of: Vec<u32>,
}

impl BlockMap {
    /// Partitions `program` into basic blocks.
    pub fn build(program: &Program) -> BlockMap {
        let insts = program.insts();
        let n = insts.len();
        let mut is_leader = vec![false; n];
        if n > 0 {
            is_leader[0] = true;
        }
        for (i, inst) in insts.iter().enumerate() {
            match inst.op {
                Op::Beq | Op::Bne | Op::Blt | Op::Bge | Op::Bltu | Op::Bgeu | Op::J | Op::Jal => {
                    // Target index: pc + 4 + imm.
                    let target_pc = program
                        .pc_of(i)
                        .wrapping_add(4)
                        .wrapping_add(inst.imm as u32);
                    if let Some(t) = program.index_of(target_pc) {
                        is_leader[t] = true;
                    }
                    if i + 1 < n {
                        is_leader[i + 1] = true;
                    }
                }
                Op::Jr | Op::Jalr | Op::Sys | Op::Halt if i + 1 < n => {
                    is_leader[i + 1] = true;
                }
                _ => {}
            }
        }
        let leaders: Vec<usize> = (0..n).filter(|&i| is_leader[i]).collect();
        let mut block_of = vec![0u32; n];
        let mut block = 0usize;
        for (i, slot) in block_of.iter_mut().enumerate() {
            if block + 1 < leaders.len() && i >= leaders[block + 1] {
                block += 1;
            }
            *slot = block as u32;
        }
        BlockMap { leaders, block_of }
    }

    /// The number of basic blocks.
    pub fn num_blocks(&self) -> usize {
        self.leaders.len()
    }

    /// The block containing instruction `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn block_of(&self, index: usize) -> usize {
        self.block_of[index] as usize
    }

    /// The instruction-index range of block `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b >= num_blocks()`.
    pub fn block_range(&self, b: usize) -> Range<usize> {
        let start = self.leaders[b];
        let end = self
            .leaders
            .get(b + 1)
            .copied()
            .unwrap_or(self.block_of.len());
        start..end
    }

    /// The leader instruction index of block `b`.
    pub fn leader(&self, b: usize) -> usize {
        self.leaders[b]
    }

    /// All leader instruction indices, sorted ascending.
    pub fn leaders(&self) -> &[usize] {
        &self.leaders
    }

    /// The per-instruction block-id table (`block_ids()[index]` is the
    /// block containing instruction `index`). Exposed so per-instruction
    /// observers (the `npobs` heat profiler) can do O(1) lookups without
    /// rebuilding the partition.
    pub fn block_ids(&self) -> &[u32] {
        &self.block_of
    }

    /// Maps a per-instruction executed set to a per-block executed set.
    ///
    /// Because control can only enter a block at its leader, a block is
    /// executed if and only if its leader is.
    pub fn blocks_executed(&self, executed: &BitSet) -> BitSet {
        let mut blocks = BitSet::new(self.num_blocks());
        for (b, &leader) in self.leaders.iter().enumerate() {
            if executed.contains(leader) {
                blocks.insert(b);
            }
        }
        blocks
    }

    /// The total instruction count of the blocks in `blocks` — used when
    /// trading instruction-store size against packet coverage (paper §V-C.4).
    pub fn instructions_in(&self, blocks: &BitSet) -> usize {
        blocks.iter().map(|b| self.block_range(b).len()).sum()
    }
}

/// Widest entry-relative byte span a statically-grouped base register may
/// cover. The block engine's runtime gate proves region uniformity by
/// classifying only the group's lowest and highest byte, which is sound for
/// the interval-shaped regions it accepts regardless of span — this bound
/// just keeps pathological offset chains from creating groups whose gate
/// would almost always fail anyway.
const GATE_MAX_SPAN: i64 = 4096;

/// Maximum statically-classified groups per block; the gate is evaluated
/// per group on every retire, so cap the per-block work. Blocks rarely
/// address through more than two or three distinct bases.
pub(crate) const MAX_GROUPS: usize = 4;

/// Groups with a single access are not worth gating: the gate costs about
/// as much as classifying the access dynamically.
const MIN_GROUP_ACCESSES: u32 = 2;

/// How a predecoded block ends and where control can go next.
///
/// `Fall` means the block ends only because the next instruction is a
/// leader (a join point); every other variant corresponds to the block's
/// final instruction. Static targets are pre-resolved all the way to
/// *block ids* at build time (every in-text static target is a leader by
/// construction); `u32::MAX` marks a target outside the text (the engine
/// then routes through the dispatcher's cold path so out-of-range and
/// misaligned targets produce exactly the per-instruction errors).
/// Operand fields are predecoded into the variant (register numbers,
/// branch opcode, `sys` code) so retiring a block never refetches or
/// re-decodes its final instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TermKind {
    /// No control transfer; execution falls into the next leader.
    Fall,
    /// Conditional branch: `taken_block` is the pre-resolved target block
    /// id (`u32::MAX` if out of text), `taken_pc` the raw target address.
    /// Not-taken falls through to `BlockEntry::next_block`.
    Branch {
        op: Op,
        rs1: u8,
        rs2: u8,
        taken_block: u32,
        taken_pc: u32,
    },
    /// `j`/`jal`: static target block, `link` set for `jal` (writes `ra`).
    Jump {
        target_block: u32,
        target_pc: u32,
        link: bool,
    },
    /// `jr`/`jalr`: target comes from register `rs1` at runtime; resolved
    /// through `BlockEntry::cache`, `link` set for `jalr` (writes `rd`).
    Indirect { rs1: u8, rd: u8, link: bool },
    /// `sys code` trap into the framework handler.
    Sys { code: u32 },
    /// `halt`.
    Halt,
}

/// One statically-classified memory-access group: all loads/stores in a
/// block whose address is a decode-time-known offset from the value one
/// base register had *at block entry*.
///
/// The region of these accesses is NOT assumed at decode time — base
/// registers are runtime values (`sys` handlers even mutate `a0`). Instead
/// the engine gates each retire: it classifies the group's lowest and
/// highest byte against the live register value and only applies the fused
/// `reads`/`writes` delta when both land in the same interval region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct MemGroup {
    /// Base register index (0–31); register 0 covers `lui`-materialized
    /// absolute addresses, since `regs[0]` is always zero.
    pub(crate) base: u8,
    /// Wrapping byte offset of the group's lowest accessed byte from the
    /// base register's block-entry value.
    pub(crate) kmin: u32,
    /// Byte span covered by the group, minus one (so `lo + span_m1` is the
    /// group's highest accessed byte).
    pub(crate) span_m1: u32,
    /// Loads in the group.
    pub(crate) reads: u32,
    /// Stores in the group.
    pub(crate) writes: u32,
}

/// Operation of one predecoded micro-op (see [`UOp`]).
///
/// Micro-ops are what the block engine executes *inside* a fully-retired
/// block. Because per-instruction accounting is fused at the block level
/// and mid-block register state is unobservable on the fast path (no
/// per-instruction observer hooks, no faults from ALU or memory ops, and
/// budget exhaustion bails out *before* the block runs), the decoder is
/// free to emit fewer, stronger micro-ops than instructions — as long as
/// every architecturally-live register write still lands and every
/// dynamically-counted access still classifies exactly once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum UOpKind {
    // Three-register ALU.
    Add,
    Sub,
    And,
    Or,
    Xor,
    Nor,
    Sll,
    Srl,
    Sra,
    Slt,
    Sltu,
    Mul,
    Mulhu,
    Divu,
    Remu,
    // Register-immediate ALU.
    AddImm,
    AndImm,
    OrImm,
    XorImm,
    SllImm,
    SrlImm,
    SraImm,
    SltImm,
    SltuImm,
    /// `rd = imm`: `lui`, `addi rd, zero, k`, and folded `lui`+`ori`/
    /// `addi` constant-materialization pairs.
    MovImm,
    // Loads / stores (address `rs1 + imm`).
    Lb,
    Lbu,
    Lh,
    Lhu,
    Lw,
    Sb,
    Sh,
    Sw,
    /// A load whose destination is `zero`: the access still counts (when
    /// not fused), but the data never lands — and reads have no side
    /// effects, so the memory lookup itself is skipped.
    LoadDiscard,
    /// Fused `add rd2, rs1, rs2` + load with base `rd2`: both register
    /// writes land (sum into `rd2`, loaded value into `rd`), one
    /// dispatch.
    AddLb,
    AddLbu,
    AddLh,
    AddLhu,
    AddLw,
    /// Fused `srl rd, rs1, rs2` + `andi rd, rd, imm` bit extraction:
    /// `rd = (rs1 >> (rs2 & 31)) & imm`.
    SrlAnd,
    /// Fused `addi rd, zero, k` + `sub rd, rd, rs1` reverse subtract:
    /// `rd = imm - rs1`.
    RsbImm,
    /// Two adjacent `lw` off the same base: `rd = [rs1 + (imm & 0xffff)]`,
    /// `rd2 = [rs1 + (imm >> 16)]`. Both offsets fit 16 bits by the
    /// emission guard, and the first destination is distinct from the
    /// base so the second address is unaffected.
    LwPair,
    /// Two independent adjacent `add`s (the `move; move` argument-setup
    /// idiom expands to `add rd, rs, zero`): `rd = rs1 + rs2`, then
    /// `rd2 = regs[imm & 0xff] + regs[imm >> 8]`. The second add's
    /// sources never alias the first's destination (emission guard).
    AddPair,
    /// Two independent adjacent `addi`s (loop-counter updates):
    /// `rd = rs1 + sext16(imm)`, `rd2 = rs2 + sext16(imm >> 16)`. Both
    /// immediates fit 16 bits signed and the second source never aliases
    /// the first destination (emission guards).
    AddImmPair,
    /// Fused mask + reverse subtract, the bit-offset flip idiom
    /// (`andi t, x, 7` then `7 - t`): `rd2 = rs1 & (imm & 0xffff)`,
    /// `rd = (imm >> 16) - rd2`. Both constants fit 16 bits by the
    /// emission guard.
    AndRsb,
    /// Fused address materialization + indexed byte load
    /// (`la t, SYM; add t, t, x; lbu d, 0(t)` — the byte-array index
    /// idiom): `rd2 = imm + rs2`, `rd = zero-extended byte at rd2`.
    /// Merged by the post-pass when the constant destination feeds the
    /// add in place and the load displacement is zero.
    MovAddLbu,
    // ------------------------------------------------------------------
    // Trace-formation superops. The block decoder never emits the kinds
    // below: they are produced only by the trace peephole
    // (`trace::peephole`), which re-fuses a hot chain's flattened
    // micro-op stream one more time. All are pure ALU — no memory
    // access, no classification — and every architecturally-live write
    // still lands (dual destinations via `rd2` where the pattern's
    // intermediate register survives), so fusing them is unobservable.
    // ------------------------------------------------------------------
    /// Fused xorshift (`slli x, s, a; srli y, s, b; xor x, x, y` — the
    /// TEA/Feistel mixing idiom): `rd2 = rs2 >> b`, `rd = (rs1 << a) ^
    /// rd2`, with `imm = a | b << 5` (the two shift sources are usually
    /// the same register, but need not be).
    XorShifts,
    /// Fused `andi rd, rs1, m` + `slli rd, rd, s` field scale:
    /// `rd = (rs1 & imm) << (rs2 as shift)`.
    AndShl,
    /// Fused `srli rd, rs1, s` + `andi rd, rd, m` field extract:
    /// `rd = (rs1 >> (rs2 as shift)) & imm`.
    SrlImmAnd,
    /// Fused `add a, rs1, rs2` + `xor b, c, a` accumulate-mix:
    /// `rd2 = rs1 + rs2`, `rd = regs[imm] ^ rd2` (`imm` carries the
    /// xor's other source, read before either write lands).
    AddXor,
    /// Fused `addi rd, zero, k` + `sll rd, rd, rs2` constant shift:
    /// `rd = imm << (rs2 & 31)`.
    MovShl,
    /// Fused `xor x, rs1, rs2` + `sll x, x, c` mix-position:
    /// `rd = (rs1 ^ rs2) << (regs[imm] & 31)`.
    XorSll,
    /// Fused `RsbImm d, rs1` + `srl e, s, d` bit-offset shift (the
    /// big-endian bit-walk idiom): `rd2 = imm - rs1`,
    /// `rd = rs2 >> (rd2 & 31)`.
    RsbSrl,
    /// Fused `RsbImm d, rs1` + `SrlAnd e, s, d, m` bit-offset extract
    /// (the bit-walk's flip + extract back to back): `rd2 = (imm &
    /// 0xffff) - rs1`, `rd = (rs2 >> (rd2 & 31)) & (imm >> 16)`. Both
    /// constants fit 16 bits by the fusion guard.
    RsbSrlAnd,
    /// Fused `slli rd, rs1, s` + `or rd, rd, rs2` byte-assembly:
    /// `rd = (rs1 << imm) | rs2`.
    ShlOr,
}

/// One predecoded micro-op. Register fields are pre-extracted indices
/// (`< 32`); `imm` is pre-widened; `grouped` marks accesses whose
/// accounting fuses into a gated [`MemGroup`] delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct UOp {
    pub(crate) kind: UOpKind,
    pub(crate) rd: u8,
    pub(crate) rs1: u8,
    pub(crate) rs2: u8,
    /// Second destination of fused add+load micro-ops.
    pub(crate) rd2: u8,
    pub(crate) grouped: bool,
    pub(crate) imm: u32,
}

/// One predecoded superblock: the block's instruction slice plus everything
/// the block engine needs to retire it in one shot.
#[derive(Debug, Clone)]
pub(crate) struct BlockEntry {
    /// First instruction index of the block.
    pub(crate) first: u32,
    /// Number of instructions, terminator included.
    pub(crate) len: u32,
    /// Instruction index just past the block (may equal the program
    /// length, in which case falling through runs off the end of text).
    pub(crate) next: u32,
    /// Block id of the fallthrough successor — `next`'s block, or
    /// `u32::MAX` when `next` is past the end of text. Blocks are
    /// contiguous, so this is simply this block's id plus one when in
    /// range.
    pub(crate) next_block: u32,
    /// Fused op-class mix for one full retire of the block.
    pub(crate) mix: OpMix,
    /// Statically-classified access groups, gated at runtime.
    pub(crate) groups: Vec<MemGroup>,
    /// Start of this block's micro-ops in [`BlockTable::uops`].
    pub(crate) uop_start: u32,
    /// Number of micro-ops (≤ the internal instruction count).
    pub(crate) uop_len: u32,
    /// How the block ends.
    pub(crate) term: TermKind,
    /// 2-way inline cache for [`TermKind::Indirect`], MRU first:
    /// `(target_pc, block_id + 1)` per way, 0 in the second slot meaning
    /// empty. Two ways cover the dominant call/return shape — a
    /// subroutine returning alternately to two call sites — which a
    /// single entry would miss on every visit; a genuinely megamorphic
    /// target merely pays the translation it would have paid anyway.
    pub(crate) cache: Cell<[(u32, u32); 2]>,
}

/// A [`BlockMap`] extended into a predecoded superblock table.
///
/// Built once per program (PacketBench builds it next to the `BlockMap` it
/// already keeps) and shared immutably by the counts-only block engine;
/// the only mutable pieces are per-block inline caches ([`Cell`]) and a
/// reusable executed-blocks scratch set ([`RefCell`]), which keep the
/// table `Send` (one table per worker thread) though not `Sync`.
#[derive(Debug, Clone)]
pub struct BlockTable {
    map: BlockMap,
    /// Dense per-instruction leader flag (block entry points).
    is_leader: Vec<bool>,
    entries: Vec<BlockEntry>,
    /// All blocks' micro-ops, one flat stream (entries index into it via
    /// `uop_start`/`uop_len`), so block interiors execute out of one
    /// contiguous allocation.
    uops: Vec<UOp>,
    /// Scratch per-block seen set, reused across runs so the block engine
    /// stays zero-allocation per packet.
    seen: RefCell<BitSet>,
    /// Scratch per-block retire counts, all-zero between runs. The engine
    /// counts retires here and folds `mix * retires` into the run's op mix
    /// once per seen block at run end, instead of seven u64 adds per
    /// retire.
    retires: RefCell<Vec<u64>>,
    /// The hot-trace layer: warm-up counters, formed traces, per-run
    /// trace retires, telemetry. Lives on the table (not the `Cpu`) so it
    /// persists across per-packet CPU reconstruction and across runs.
    trace: RefCell<TraceState>,
}

impl BlockTable {
    /// Predecodes `program` into superblock entries.
    pub fn build(program: &Program) -> BlockTable {
        let map = BlockMap::build(program);
        let insts = program.insts();
        let n = insts.len();
        let mut is_leader = vec![false; n];
        for &l in map.leaders() {
            is_leader[l] = true;
        }
        let mut uops = Vec::new();
        let entries = (0..map.num_blocks())
            .map(|b| Self::decode_block(program, &map, b, &mut uops))
            .collect();
        let seen = RefCell::new(BitSet::new(map.num_blocks()));
        let retires = RefCell::new(vec![0u64; map.num_blocks()]);
        let trace = RefCell::new(TraceState::new(map.num_blocks(), TraceParams::default()));
        BlockTable {
            map,
            is_leader,
            entries,
            uops,
            seen,
            retires,
            trace,
        }
    }

    /// Replaces the trace layer's formation parameters, resetting any
    /// warm-up progress and formed traces. The conformance harness runs
    /// with [`TraceParams::eager`]; the bench's block-vs-trace comparison
    /// pins one engine to [`TraceParams::disabled`].
    pub fn set_trace_params(&mut self, params: TraceParams) {
        *self.trace.borrow_mut() = TraceState::new(self.map.num_blocks(), params);
    }

    /// A copy of the trace layer's cumulative telemetry counters.
    pub fn trace_stats(&self) -> TraceStats {
        self.trace.borrow().stats
    }

    /// Borrows the trace layer.
    ///
    /// # Panics
    ///
    /// Panics if a previous borrow is still live (the block engine is not
    /// reentrant over one table).
    pub(crate) fn trace_scratch(&self) -> RefMut<'_, TraceState> {
        self.trace.borrow_mut()
    }

    fn decode_block(
        program: &Program,
        map: &BlockMap,
        b: usize,
        uops: &mut Vec<UOp>,
    ) -> BlockEntry {
        let range = map.block_range(b);
        let insts = program.insts();
        let first = range.start;
        let len = range.len();
        let last = range.end - 1;
        // Every in-text static target is a leader (the block partition
        // marked it), so targets resolve to block ids directly.
        let block_of = |pc: u32| {
            program
                .index_of(pc)
                .map_or(u32::MAX, |t| map.block_of(t) as u32)
        };
        let term_inst = insts[last];
        let term = match term_inst.op {
            Op::Beq | Op::Bne | Op::Blt | Op::Bge | Op::Bltu | Op::Bgeu => {
                let taken_pc = program
                    .pc_of(last)
                    .wrapping_add(4)
                    .wrapping_add(term_inst.imm as u32);
                TermKind::Branch {
                    op: term_inst.op,
                    rs1: term_inst.rs1.index() as u8,
                    rs2: term_inst.rs2.index() as u8,
                    taken_block: block_of(taken_pc),
                    taken_pc,
                }
            }
            Op::J | Op::Jal => {
                let target_pc = program
                    .pc_of(last)
                    .wrapping_add(4)
                    .wrapping_add(term_inst.imm as u32);
                TermKind::Jump {
                    target_block: block_of(target_pc),
                    target_pc,
                    link: term_inst.op == Op::Jal,
                }
            }
            Op::Jr | Op::Jalr => TermKind::Indirect {
                rs1: term_inst.rs1.index() as u8,
                rd: term_inst.rd.index() as u8,
                link: term_inst.op == Op::Jalr,
            },
            Op::Sys => TermKind::Sys {
                code: term_inst.imm as u32,
            },
            Op::Halt => TermKind::Halt,
            _ => TermKind::Fall,
        };

        let mut mix = OpMix::default();
        for inst in &insts[range.clone()] {
            mix.record(inst.op);
        }

        // The internal instructions are everything before the terminator;
        // for `Fall` blocks every instruction (including the last) is
        // internal, because the block only ends at a join point.
        let internal_end = if term == TermKind::Fall {
            range.end
        } else {
            last
        };
        let (groups, static_mask) = Self::classify_accesses(insts, first, internal_end);
        let uop_start = uops.len() as u32;
        Self::emit_uops(&insts[first..internal_end], static_mask, uops);
        let uop_len = uops.len() as u32 - uop_start;

        BlockEntry {
            first: first as u32,
            len: len as u32,
            next: range.end as u32,
            next_block: if range.end < insts.len() {
                b as u32 + 1
            } else {
                u32::MAX
            },
            mix,
            groups,
            uop_start,
            uop_len,
            term,
            cache: Cell::new([(0, 0); 2]),
        }
    }

    /// Lowers one block's internal instructions to micro-ops.
    ///
    /// The peepholes here are justified by the unobservability of mid-block
    /// state on the fast path (see [`UOpKind`]): writes to `r0` are
    /// architecturally dead, so ALU ops targeting it vanish and loads into
    /// it become classify-only [`UOpKind::LoadDiscard`]; a `lui` followed
    /// by an `ori`/`addi` completing the same register's constant folds to
    /// one [`UOpKind::MovImm`]; and an `add` immediately consumed as a
    /// load's base fuses into one add-load micro-op that still performs
    /// both register writes. Per-op accounting is already fused at the
    /// block level, so dropping or merging micro-ops never changes counts.
    fn emit_uops(insts: &[crate::isa::Inst], static_mask: u64, out: &mut Vec<UOp>) {
        use UOpKind as K;
        let start = out.len();
        // Positions past 64 are never grouped (classification stops there).
        let grouped = |j: usize| j < 64 && (static_mask >> j) & 1 != 0;
        let uop = |kind, rd, rs1, rs2, imm| UOp {
            kind,
            rd,
            rs1,
            rs2,
            rd2: 0,
            grouped: false,
            imm,
        };
        let mut j = 0usize;
        while j < insts.len() {
            let inst = &insts[j];
            let rd = inst.rd.index() as u8;
            let rs1 = inst.rs1.index() as u8;
            let rs2 = inst.rs2.index() as u8;
            let imm = inst.imm as u32;
            match inst.op {
                Op::Add
                | Op::Sub
                | Op::And
                | Op::Or
                | Op::Xor
                | Op::Nor
                | Op::Sll
                | Op::Srl
                | Op::Sra
                | Op::Slt
                | Op::Sltu
                | Op::Mul
                | Op::Mulhu
                | Op::Divu
                | Op::Remu => {
                    if rd == 0 {
                        j += 1;
                        continue;
                    }
                    if inst.op == Op::Srl && j + 1 < insts.len() {
                        // `srl` + `andi` on the same register is the bit
                        // extraction idiom (shift down, mask).
                        let next = &insts[j + 1];
                        if next.op == Op::Andi
                            && next.rd.index() as u8 == rd
                            && next.rs1.index() as u8 == rd
                        {
                            out.push(uop(K::SrlAnd, rd, rs1, rs2, next.imm as u32));
                            j += 2;
                            continue;
                        }
                    }
                    if inst.op == Op::Add && j + 1 < insts.len() {
                        let next = &insts[j + 1];
                        let fused_kind = match next.op {
                            Op::Lb => Some(K::AddLb),
                            Op::Lbu => Some(K::AddLbu),
                            Op::Lh => Some(K::AddLh),
                            Op::Lhu => Some(K::AddLhu),
                            Op::Lw => Some(K::AddLw),
                            _ => None,
                        };
                        if let Some(kind) = fused_kind {
                            if next.rs1.index() as u8 == rd && next.rd.index() != 0 {
                                out.push(UOp {
                                    kind,
                                    rd: next.rd.index() as u8,
                                    rs1,
                                    rs2,
                                    rd2: rd,
                                    grouped: grouped(j + 1),
                                    imm: next.imm as u32,
                                });
                                j += 2;
                                continue;
                            }
                        }
                        // Two independent `add`s (argument-setup `move`
                        // pairs) share one dispatch; the second add's
                        // sources ride in the immediate.
                        if next.op == Op::Add
                            && next.rd.index() != 0
                            && next.rs1.index() as u8 != rd
                            && next.rs2.index() as u8 != rd
                        {
                            out.push(UOp {
                                kind: K::AddPair,
                                rd,
                                rs1,
                                rs2,
                                rd2: next.rd.index() as u8,
                                grouped: false,
                                imm: next.rs1.index() as u32 | ((next.rs2.index() as u32) << 8),
                            });
                            j += 2;
                            continue;
                        }
                    }
                    let kind = match inst.op {
                        Op::Add => K::Add,
                        Op::Sub => K::Sub,
                        Op::And => K::And,
                        Op::Or => K::Or,
                        Op::Xor => K::Xor,
                        Op::Nor => K::Nor,
                        Op::Sll => K::Sll,
                        Op::Srl => K::Srl,
                        Op::Sra => K::Sra,
                        Op::Slt => K::Slt,
                        Op::Sltu => K::Sltu,
                        Op::Mul => K::Mul,
                        Op::Mulhu => K::Mulhu,
                        Op::Divu => K::Divu,
                        _ => K::Remu,
                    };
                    out.push(uop(kind, rd, rs1, rs2, 0));
                }
                Op::Addi
                | Op::Andi
                | Op::Ori
                | Op::Xori
                | Op::Slli
                | Op::Srli
                | Op::Srai
                | Op::Slti
                | Op::Sltiu => {
                    if rd == 0 {
                        j += 1;
                        continue;
                    }
                    if inst.op == Op::Addi {
                        // `addi rd, zero, k` + `sub rd, rd, x` is the
                        // assembler's reverse-subtract idiom (`7 - bit`
                        // shift-amount flips and the like).
                        if rs1 == 0 && j + 1 < insts.len() {
                            let next = &insts[j + 1];
                            if next.op == Op::Sub
                                && next.rd.index() as u8 == rd
                                && next.rs1.index() as u8 == rd
                                && next.rs2.index() as u8 != rd
                            {
                                out.push(uop(K::RsbImm, rd, next.rs2.index() as u8, 0, imm));
                                j += 2;
                                continue;
                            }
                        }
                        // Two independent `addi`s (loop-counter updates,
                        // `li` pairs) share one dispatch.
                        if let Some(next) = insts.get(j + 1) {
                            let fits = |v: i32| (-0x8000..0x8000).contains(&v);
                            if next.op == Op::Addi
                                && next.rd.index() != 0
                                && next.rs1.index() as u8 != rd
                                && fits(inst.imm)
                                && fits(next.imm)
                            {
                                out.push(UOp {
                                    kind: K::AddImmPair,
                                    rd,
                                    rs1,
                                    rs2: next.rs1.index() as u8,
                                    rd2: next.rd.index() as u8,
                                    grouped: false,
                                    imm: (imm & 0xffff) | ((next.imm as u32 & 0xffff) << 16),
                                });
                                j += 2;
                                continue;
                            }
                        }
                    }
                    if inst.op == Op::Addi && rs1 == 0 {
                        // `addi rd, zero, k` is a constant materialization.
                        out.push(uop(K::MovImm, rd, 0, 0, imm));
                    } else {
                        let kind = match inst.op {
                            Op::Addi => K::AddImm,
                            Op::Andi => K::AndImm,
                            Op::Ori => K::OrImm,
                            Op::Xori => K::XorImm,
                            Op::Slli => K::SllImm,
                            Op::Srli => K::SrlImm,
                            Op::Srai => K::SraImm,
                            Op::Slti => K::SltImm,
                            _ => K::SltuImm,
                        };
                        out.push(uop(kind, rd, rs1, 0, imm));
                    }
                }
                Op::Lui => {
                    if rd == 0 {
                        j += 1;
                        continue;
                    }
                    let base = imm << 16;
                    if j + 1 < insts.len() {
                        let next = &insts[j + 1];
                        if (next.op == Op::Ori || next.op == Op::Addi)
                            && next.rd.index() as u8 == rd
                            && next.rs1.index() as u8 == rd
                        {
                            let k = next.imm as u32;
                            let folded = if next.op == Op::Ori {
                                base | k
                            } else {
                                base.wrapping_add(k)
                            };
                            out.push(uop(K::MovImm, rd, 0, 0, folded));
                            j += 2;
                            continue;
                        }
                    }
                    out.push(uop(K::MovImm, rd, 0, 0, base));
                }
                Op::Lb | Op::Lbu | Op::Lh | Op::Lhu | Op::Lw => {
                    // Adjacent word loads off one base (left/right child
                    // pointers, paired struct fields) pair into one
                    // dispatch; the first destination must not alias the
                    // base, both offsets must fit the packed halves, and
                    // both accesses must share a grouped flag.
                    if inst.op == Op::Lw && rd != 0 && rd != rs1 && imm <= 0xffff {
                        if let Some(next) = insts.get(j + 1) {
                            if next.op == Op::Lw
                                && next.rs1.index() as u8 == rs1
                                && next.rd.index() != 0
                                && (next.imm as u32) <= 0xffff
                                && grouped(j) == grouped(j + 1)
                            {
                                out.push(UOp {
                                    kind: K::LwPair,
                                    rd,
                                    rs1,
                                    rs2: 0,
                                    rd2: next.rd.index() as u8,
                                    grouped: grouped(j),
                                    imm: imm | ((next.imm as u32) << 16),
                                });
                                j += 2;
                                continue;
                            }
                        }
                    }
                    let kind = if rd == 0 {
                        K::LoadDiscard
                    } else {
                        match inst.op {
                            Op::Lb => K::Lb,
                            Op::Lbu => K::Lbu,
                            Op::Lh => K::Lh,
                            Op::Lhu => K::Lhu,
                            _ => K::Lw,
                        }
                    };
                    out.push(UOp {
                        kind,
                        rd,
                        rs1,
                        rs2: 0,
                        rd2: 0,
                        grouped: grouped(j),
                        imm,
                    });
                }
                Op::Sb | Op::Sh | Op::Sw => {
                    let kind = match inst.op {
                        Op::Sb => K::Sb,
                        Op::Sh => K::Sh,
                        _ => K::Sw,
                    };
                    out.push(UOp {
                        kind,
                        rd: 0,
                        rs1,
                        rs2,
                        rd2: 0,
                        grouped: grouped(j),
                        imm,
                    });
                }
                // The leader rule makes the instruction after any control
                // transfer a leader, so control transfers are always block
                // terminators — never internal.
                _ => unreachable!("control transfer inside a basic block"),
            }
            j += 1;
        }

        // Second-level peephole over this block's emitted stream: the
        // bit-offset flip idiom (`andi t, x, M` then `K - t`, the latter
        // already fused to `RsbImm`) collapses to one dual-destination
        // `AndRsb` when both constants fit 16 bits. Writing `rd2` (the
        // mask) before `rd` (the flip) preserves the original order, so
        // any aliasing between the two destinations stays correct.
        let mut i = start;
        let mut w = start;
        while i < out.len() {
            let (a, b) = (out[i], out.get(i + 1).copied());
            if let Some(b) = b {
                if a.kind == K::AndImm
                    && b.kind == K::RsbImm
                    && b.rs1 == a.rd
                    && a.imm <= 0xffff
                    && b.imm <= 0xffff
                {
                    out[w] = UOp {
                        kind: K::AndRsb,
                        rd: b.rd,
                        rs1: a.rs1,
                        rs2: 0,
                        rd2: a.rd,
                        grouped: false,
                        imm: a.imm | (b.imm << 16),
                    };
                    w += 1;
                    i += 2;
                    continue;
                }
                // `imm` must carry the full materialized constant, so the
                // load displacement has to be zero; `rd2 == a.rd` means the
                // add overwrote the constant in place (no other reader).
                if a.kind == K::MovImm
                    && b.kind == K::AddLbu
                    && b.rs1 == a.rd
                    && b.rd2 == a.rd
                    && b.rs2 != a.rd
                    && b.imm == 0
                {
                    out[w] = UOp {
                        kind: K::MovAddLbu,
                        rd: b.rd,
                        rs1: 0,
                        rs2: b.rs2,
                        rd2: b.rd2,
                        grouped: b.grouped,
                        imm: a.imm,
                    };
                    w += 1;
                    i += 2;
                    continue;
                }
            }
            out[w] = a;
            w += 1;
            i += 1;
        }
        out.truncate(w);
    }

    /// Decode-time symbolic analysis over one block's internal
    /// instructions: tracks each register as "block-entry value of base
    /// register `b`, plus constant `k`" and collects loads/stores whose
    /// address is such a known offset into per-base groups.
    ///
    /// Transfer function: every register starts as `(itself, 0)`; `addi`
    /// propagates `(b, k + imm)`; `lui` produces `(r0, imm << 16)` —
    /// `regs[0]` is hardwired zero, so base 0 denotes an absolute
    /// constant; any other write makes the register unknown.
    fn classify_accesses(
        insts: &[crate::isa::Inst],
        first: usize,
        internal_end: usize,
    ) -> (Vec<MemGroup>, u64) {
        // (base register, entry-relative offset); None = unknown.
        let mut state: [Option<(u8, i64)>; 32] = [None; 32];
        for (r, slot) in state.iter_mut().enumerate() {
            *slot = Some((r as u8, 0));
        }
        // (base, offset, size, is_store, block-local position)
        let mut accesses: Vec<(u8, i64, u32, bool, usize)> = Vec::new();

        for (j, inst) in insts[first..internal_end].iter().enumerate() {
            match inst.op {
                Op::Addi => {
                    let new = state[inst.rs1.index()].map(|(b, k)| (b, k + inst.imm as i64));
                    if inst.rd.index() != 0 {
                        state[inst.rd.index()] = new;
                    }
                }
                Op::Lui => {
                    if inst.rd.index() != 0 {
                        state[inst.rd.index()] = Some((0, ((inst.imm as u32) << 16) as i64));
                    }
                }
                Op::Lb | Op::Lbu | Op::Lh | Op::Lhu | Op::Lw => {
                    let size = match inst.op {
                        Op::Lb | Op::Lbu => 1,
                        Op::Lh | Op::Lhu => 2,
                        _ => 4,
                    };
                    if j < 64 {
                        if let Some((b, k)) = state[inst.rs1.index()] {
                            accesses.push((b, k + inst.imm as i64, size, false, j));
                        }
                    }
                    if inst.rd.index() != 0 {
                        state[inst.rd.index()] = None;
                    }
                }
                Op::Sb | Op::Sh | Op::Sw => {
                    let size = match inst.op {
                        Op::Sb => 1,
                        Op::Sh => 2,
                        _ => 4,
                    };
                    if j < 64 {
                        if let Some((b, k)) = state[inst.rs1.index()] {
                            accesses.push((b, k + inst.imm as i64, size, true, j));
                        }
                    }
                }
                _ => {
                    // Any other register write invalidates symbolic state.
                    // Control transfers never appear before `internal_end`.
                    if matches!(inst.op.class(), OpClass::Alu | OpClass::MulDiv)
                        && inst.rd.index() != 0
                    {
                        state[inst.rd.index()] = None;
                    }
                }
            }
        }

        // Group by base register, enforce the span bound and the
        // minimum-size threshold, and cap the per-block group count.
        let mut groups: Vec<(MemGroup, Vec<usize>)> = Vec::new();
        for base in 0..32u8 {
            let members: Vec<&(u8, i64, u32, bool, usize)> =
                accesses.iter().filter(|a| a.0 == base).collect();
            let total = members.len() as u32;
            if total < MIN_GROUP_ACCESSES {
                continue;
            }
            let kmin = members.iter().map(|a| a.1).min().unwrap();
            let kmax_end = members.iter().map(|a| a.1 + a.2 as i64).max().unwrap();
            if kmax_end - kmin > GATE_MAX_SPAN {
                continue;
            }
            let writes = members.iter().filter(|a| a.3).count() as u32;
            groups.push((
                MemGroup {
                    base,
                    kmin: kmin as u32,
                    span_m1: (kmax_end - kmin - 1) as u32,
                    reads: total - writes,
                    writes,
                },
                members.iter().map(|a| a.4).collect(),
            ));
        }
        // Keep the largest groups if over the cap.
        groups.sort_by_key(|(g, _)| std::cmp::Reverse(g.reads + g.writes));
        groups.truncate(MAX_GROUPS);

        let mut static_mask = 0u64;
        for (_, positions) in &groups {
            for &j in positions {
                static_mask |= 1 << j;
            }
        }
        (groups.into_iter().map(|(g, _)| g).collect(), static_mask)
    }

    /// The underlying basic-block partition.
    pub fn block_map(&self) -> &BlockMap {
        &self.map
    }

    /// The number of basic blocks.
    pub fn num_blocks(&self) -> usize {
        self.entries.len()
    }

    /// Whether instruction `index` is a block leader (a legal block-engine
    /// entry point).
    #[inline(always)]
    pub(crate) fn is_leader(&self, index: usize) -> bool {
        self.is_leader[index]
    }

    /// Borrows the cleared per-run seen-blocks scratch set.
    ///
    /// # Panics
    ///
    /// Panics if a previous borrow is still live (the block engine is not
    /// reentrant over one table).
    pub(crate) fn seen_scratch(&self) -> RefMut<'_, BitSet> {
        let mut seen = self.seen.borrow_mut();
        seen.clear();
        seen
    }

    /// Borrows the per-block retire-count scratch. The caller must zero
    /// every entry it incremented before dropping the borrow (the engine
    /// does so while folding seen blocks), keeping the all-zero invariant
    /// without an O(num_blocks) clear per run.
    ///
    /// # Panics
    ///
    /// Panics if a previous borrow is still live.
    pub(crate) fn retire_scratch(&self) -> RefMut<'_, Vec<u64>> {
        self.retires.borrow_mut()
    }

    /// The predecoded entry for block `b`.
    #[inline(always)]
    pub(crate) fn entry(&self, b: usize) -> &BlockEntry {
        &self.entries[b]
    }

    /// The micro-ops of `entry`'s block interior.
    #[inline(always)]
    pub(crate) fn uops(&self, entry: &BlockEntry) -> &[UOp] {
        &self.uops[entry.uop_start as usize..(entry.uop_start + entry.uop_len) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{reg, Inst};
    use crate::mem::MemoryMap;

    fn program(insts: Vec<Inst>) -> Program {
        Program::new(insts, MemoryMap::default().text_base)
    }

    #[test]
    fn table_decodes_terminators_and_successors() {
        // 0: addi | 1: beq -> 3 | 2: addi (Fall into 3) | 3: sys | 4: halt
        // | 5: jal -> 0 | 6: jr ra
        let p = program(vec![
            Inst::with_imm(Op::Addi, reg::T0, reg::ZERO, 1),
            Inst::branch(Op::Beq, reg::T0, reg::ZERO, 4),
            Inst::with_imm(Op::Addi, reg::T1, reg::ZERO, 2),
            Inst::sys(0),
            Inst::halt(),
            Inst::jump(Op::Jal, -24),
            Inst::jr(reg::RA),
        ]);
        let t = BlockTable::build(&p);
        assert_eq!(t.num_blocks(), 6);
        let terms: Vec<TermKind> = (0..6).map(|b| t.entry(b).term).collect();
        assert!(matches!(
            terms[0],
            TermKind::Branch {
                op: Op::Beq,
                taken_block: 2,
                ..
            }
        ));
        assert_eq!(terms[1], TermKind::Fall);
        assert!(matches!(terms[2], TermKind::Sys { code: 0 }));
        assert_eq!(terms[3], TermKind::Halt);
        assert!(matches!(
            terms[4],
            TermKind::Jump {
                target_block: 0,
                link: true,
                ..
            }
        ));
        assert!(matches!(terms[5], TermKind::Indirect { link: false, .. }));
        // The Fall block's successor is the sys block's leader.
        let fall = t.entry(1);
        assert_eq!(fall.next, 3);
    }

    #[test]
    fn table_groups_statically_classified_accesses() {
        // Two packet loads off a0, two stack stores off sp, and one
        // lone gp load (below the group-size threshold).
        let p = program(vec![
            Inst::with_imm(Op::Lw, reg::T0, reg::A0, 0),
            Inst::with_imm(Op::Lw, reg::T1, reg::A0, 12),
            Inst::store(Op::Sw, reg::T0, reg::SP, -4),
            Inst::store(Op::Sw, reg::T1, reg::SP, -8),
            Inst::with_imm(Op::Lw, reg::T2, reg::GP, 0),
            Inst::jr(reg::RA),
        ]);
        let t = BlockTable::build(&p);
        let e = t.entry(0);
        assert_eq!(e.groups.len(), 2);
        let a0 = e.groups.iter().find(|g| g.base == reg::A0.index() as u8);
        let sp = e.groups.iter().find(|g| g.base == reg::SP.index() as u8);
        let a0 = a0.expect("a0 group");
        let sp = sp.expect("sp group");
        assert_eq!((a0.reads, a0.writes), (2, 0));
        assert_eq!(a0.kmin, 0);
        assert_eq!(a0.span_m1, 15); // bytes [0, 16)
        assert_eq!((sp.reads, sp.writes), (0, 2));
        assert_eq!(sp.kmin, (-8i32) as u32);
        assert_eq!(sp.span_m1, 7); // bytes [-8, 0)
                                   // Accesses 0-3 fused, the lone gp load stays dynamic; the two
                                   // a0 loads pair into one micro-op.
        let kinds: Vec<(UOpKind, bool)> = t.uops(e).iter().map(|u| (u.kind, u.grouped)).collect();
        assert_eq!(
            kinds,
            [
                (UOpKind::LwPair, true),
                (UOpKind::Sw, true),
                (UOpKind::Sw, true),
                (UOpKind::Lw, false),
            ]
        );
    }

    #[test]
    fn table_tracks_addi_chains_and_clobbers() {
        // t0 = a0 + 64; loads off t0 group under base a0; after t0 is
        // clobbered by a load, further accesses are dynamic.
        let p = program(vec![
            Inst::with_imm(Op::Addi, reg::T0, reg::A0, 64),
            Inst::with_imm(Op::Lw, reg::T1, reg::T0, 0),
            Inst::with_imm(Op::Lw, reg::T0, reg::T0, 4), // clobbers t0
            Inst::with_imm(Op::Lw, reg::T2, reg::T0, 8), // dynamic
            Inst::jr(reg::RA),
        ]);
        let t = BlockTable::build(&p);
        let e = t.entry(0);
        assert_eq!(e.groups.len(), 1);
        let g = &e.groups[0];
        assert_eq!(g.base, reg::A0.index() as u8);
        assert_eq!(g.kmin, 64);
        assert_eq!(g.span_m1, 7); // bytes [64, 72)
        assert_eq!((g.reads, g.writes), (2, 0));
        let kinds: Vec<(UOpKind, bool)> = t.uops(e).iter().map(|u| (u.kind, u.grouped)).collect();
        assert_eq!(
            kinds,
            [
                (UOpKind::AddImm, false),
                (UOpKind::LwPair, true),
                (UOpKind::Lw, false),
            ]
        );
    }

    #[test]
    fn table_groups_lui_constants_under_the_zero_register() {
        let p = program(vec![
            Inst::lui(reg::T0, 0x2000), // 0x2000_0000 = data base
            Inst::with_imm(Op::Lw, reg::T1, reg::T0, 0),
            Inst::store(Op::Sw, reg::T1, reg::T0, 4),
            Inst::jr(reg::RA),
        ]);
        let t = BlockTable::build(&p);
        let e = t.entry(0);
        assert_eq!(e.groups.len(), 1);
        let g = &e.groups[0];
        assert_eq!(g.base, 0);
        assert_eq!(g.kmin, 0x2000_0000);
        assert_eq!((g.reads, g.writes), (1, 1));
    }

    #[test]
    fn uops_fold_constants_and_fuse_address_loads() {
        // lui+ori fold to one MovImm; add+lw fuse to one AddLw with both
        // destinations preserved.
        let p = program(vec![
            Inst::lui(reg::T0, 0x2000),
            Inst::with_imm(Op::Ori, reg::T0, reg::T0, 0x10),
            Inst::rtype(Op::Add, reg::T1, reg::T0, reg::A0),
            Inst::with_imm(Op::Lw, reg::T2, reg::T1, 8),
            Inst::jr(reg::RA),
        ]);
        let t = BlockTable::build(&p);
        let e = t.entry(0);
        let uops = t.uops(e);
        assert_eq!(uops.len(), 2);
        assert_eq!(uops[0].kind, UOpKind::MovImm);
        assert_eq!(uops[0].rd, reg::T0.index() as u8);
        assert_eq!(uops[0].imm, 0x2000_0010);
        assert_eq!(uops[1].kind, UOpKind::AddLw);
        assert_eq!(uops[1].rd, reg::T2.index() as u8);
        assert_eq!(uops[1].rd2, reg::T1.index() as u8);
        assert_eq!(uops[1].imm, 8);
    }

    #[test]
    fn uops_drop_dead_zero_register_writes() {
        // ALU writes to `zero` vanish; a load into `zero` keeps only its
        // classify-side effect.
        let p = program(vec![
            Inst::rtype(Op::Add, reg::ZERO, reg::T0, reg::T1),
            Inst::with_imm(Op::Addi, reg::ZERO, reg::T0, 4),
            Inst::with_imm(Op::Lw, reg::ZERO, reg::A0, 0),
            Inst::store(Op::Sw, reg::T0, reg::SP, -4),
            Inst::jr(reg::RA),
        ]);
        let t = BlockTable::build(&p);
        let e = t.entry(0);
        let uops = t.uops(e);
        assert_eq!(uops.len(), 2);
        assert_eq!(uops[0].kind, UOpKind::LoadDiscard);
        assert_eq!(uops[1].kind, UOpKind::Sw);
        // The block-level mix still counts all four original instructions
        // plus the terminator.
        assert_eq!(e.mix.total(), 5);
    }

    #[test]
    fn uops_fuse_bit_offset_flip() {
        // The `andi t, x, 7` / `li k, 7` / `sub k, k, t` idiom (bit-offset
        // flip) first fuses li+sub into `RsbImm`, then the post-pass merges
        // the adjacent `AndImm` into one dual-destination `AndRsb`.
        let p = program(vec![
            Inst::with_imm(Op::Andi, reg::T5, reg::A3, 7),
            Inst::with_imm(Op::Addi, reg::T6, reg::ZERO, 7),
            Inst::rtype(Op::Sub, reg::T6, reg::T6, reg::T5),
            Inst::jr(reg::RA),
        ]);
        let t = BlockTable::build(&p);
        let uops = t.uops(t.entry(0));
        assert_eq!(uops.len(), 1);
        let u = uops[0];
        assert_eq!(u.kind, UOpKind::AndRsb);
        assert_eq!(u.rs1, reg::A3.index() as u8);
        assert_eq!(u.rd2, reg::T5.index() as u8);
        assert_eq!(u.rd, reg::T6.index() as u8);
        assert_eq!(u.imm, 7 | (7 << 16));
    }

    #[test]
    fn uops_fuse_indexed_byte_load() {
        // `la`/`add`/`lbu` (byte-array indexing) first fuses lui+ori into
        // `MovImm` and add+lbu into `AddLbu`, then the post-pass merges the
        // pair into one `MovAddLbu` carrying the materialized base address.
        let p = program(vec![
            Inst::lui(reg::T3, 0x2000),
            Inst::with_imm(Op::Ori, reg::T3, reg::T3, 0x40),
            Inst::rtype(Op::Add, reg::T3, reg::T3, reg::T2),
            Inst::with_imm(Op::Lbu, reg::T4, reg::T3, 0),
            Inst::jr(reg::RA),
        ]);
        let t = BlockTable::build(&p);
        let uops = t.uops(t.entry(0));
        assert_eq!(uops.len(), 1);
        let u = uops[0];
        assert_eq!(u.kind, UOpKind::MovAddLbu);
        assert_eq!(u.rs2, reg::T2.index() as u8);
        assert_eq!(u.rd2, reg::T3.index() as u8);
        assert_eq!(u.rd, reg::T4.index() as u8);
        assert_eq!(u.imm, 0x2000_0040);
    }

    #[test]
    fn straight_line_is_one_block() {
        let p = program(vec![
            Inst::with_imm(Op::Addi, reg::T0, reg::ZERO, 1),
            Inst::with_imm(Op::Addi, reg::T1, reg::ZERO, 2),
            Inst::jr(reg::RA),
        ]);
        let map = BlockMap::build(&p);
        assert_eq!(map.num_blocks(), 1);
        assert_eq!(map.block_range(0), 0..3);
    }

    #[test]
    fn branch_splits_blocks() {
        // 0: beq -> target 2 | 1: addi | 2: jr
        let p = program(vec![
            Inst::branch(Op::Beq, reg::A0, reg::ZERO, 4),
            Inst::with_imm(Op::Addi, reg::T0, reg::ZERO, 1),
            Inst::jr(reg::RA),
        ]);
        let map = BlockMap::build(&p);
        assert_eq!(map.num_blocks(), 3);
        assert_eq!(map.block_of(0), 0);
        assert_eq!(map.block_of(1), 1);
        assert_eq!(map.block_of(2), 2);
    }

    #[test]
    fn loop_back_edge_target_is_leader() {
        // 0: addi | 1: addi (loop head) | 2: blt -> 1 | 3: jr
        let p = program(vec![
            Inst::with_imm(Op::Addi, reg::T0, reg::ZERO, 0),
            Inst::with_imm(Op::Addi, reg::T0, reg::T0, 1),
            Inst::branch(Op::Blt, reg::T0, reg::T1, -8),
            Inst::jr(reg::RA),
        ]);
        let map = BlockMap::build(&p);
        assert_eq!(map.num_blocks(), 3);
        assert_eq!(map.block_range(0), 0..1);
        assert_eq!(map.block_range(1), 1..3);
        assert_eq!(map.block_range(2), 3..4);
    }

    #[test]
    fn blocks_executed_follows_leaders() {
        let p = program(vec![
            Inst::branch(Op::Beq, reg::A0, reg::ZERO, 4),
            Inst::with_imm(Op::Addi, reg::T0, reg::ZERO, 1),
            Inst::jr(reg::RA),
        ]);
        let map = BlockMap::build(&p);
        let mut executed = BitSet::new(3);
        executed.insert(0);
        executed.insert(2); // branch taken: skipped instruction 1
        let blocks = map.blocks_executed(&executed);
        assert!(blocks.contains(0));
        assert!(!blocks.contains(1));
        assert!(blocks.contains(2));
        assert_eq!(map.instructions_in(&blocks), 2);
    }

    #[test]
    fn empty_program() {
        let p = program(vec![]);
        let map = BlockMap::build(&p);
        assert_eq!(map.num_blocks(), 0);
    }

    #[test]
    fn jump_target_out_of_text_ignored() {
        let p = program(vec![Inst::jump(Op::J, 400), Inst::jr(reg::RA)]);
        let map = BlockMap::build(&p);
        assert_eq!(map.num_blocks(), 2);
    }
}
