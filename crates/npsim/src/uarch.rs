//! Optional micro-architectural side models.
//!
//! The paper notes that PacketBench inherits "traditional micro-architectural
//! statistics" from the underlying processor simulator (instruction mix,
//! branch misprediction rates, cache behaviour). These models reproduce that
//! capability: they observe the executed instruction stream without
//! affecting architectural state.

use crate::isa::{Op, OpClass};

/// Configuration for the micro-architectural models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UarchConfig {
    /// Number of 2-bit counters in the bimodal branch predictor
    /// (power of two).
    pub predictor_entries: usize,
    /// Instruction cache geometry.
    pub icache: CacheConfig,
    /// Data cache geometry.
    pub dcache: CacheConfig,
    /// Pipeline timing parameters.
    pub timing: TimingConfig,
}

impl Default for UarchConfig {
    fn default() -> UarchConfig {
        UarchConfig {
            predictor_entries: 1024,
            // Small on-chip memories, as the paper argues suffice for NPs.
            icache: CacheConfig {
                size_bytes: 8 * 1024,
                line_bytes: 32,
                associativity: 2,
            },
            dcache: CacheConfig {
                size_bytes: 8 * 1024,
                line_bytes: 32,
                associativity: 2,
            },
            timing: TimingConfig::default(),
        }
    }
}

/// Pipeline timing parameters for the cycle model: a classic in-order
/// scalar five-stage pipeline with blocking caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingConfig {
    /// Stall cycles on a mispredicted conditional branch.
    pub branch_penalty: u64,
    /// Stall cycles when an instruction consumes the result of the
    /// immediately preceding load (load-use hazard).
    pub load_use_penalty: u64,
    /// Stall cycles per instruction-cache miss.
    pub icache_miss_penalty: u64,
    /// Stall cycles per data-cache miss.
    pub dcache_miss_penalty: u64,
    /// Extra cycles for multiply/divide instructions.
    pub muldiv_latency: u64,
}

impl Default for TimingConfig {
    fn default() -> TimingConfig {
        TimingConfig {
            branch_penalty: 3,
            load_use_penalty: 1,
            icache_miss_penalty: 20,
            dcache_miss_penalty: 30,
            muldiv_latency: 4,
        }
    }
}

/// Geometry of a set-associative cache model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Ways per set (1 = direct-mapped).
    pub associativity: usize,
}

/// A bimodal (2-bit saturating counter) branch predictor.
///
/// Indexed by the branch PC; counters start weakly-not-taken. Only
/// conditional branches are predicted.
#[derive(Debug, Clone)]
pub struct BimodalPredictor {
    counters: Vec<u8>,
    predictions: u64,
    mispredictions: u64,
}

impl BimodalPredictor {
    /// Creates a predictor with `entries` counters.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or not a power of two.
    pub fn new(entries: usize) -> BimodalPredictor {
        assert!(
            entries.is_power_of_two(),
            "predictor entries must be a power of two"
        );
        BimodalPredictor {
            counters: vec![1; entries], // weakly not-taken
            predictions: 0,
            mispredictions: 0,
        }
    }

    /// Records the outcome of a conditional branch at `pc`, updating the
    /// statistics and the counter. Returns whether the branch was
    /// mispredicted.
    pub fn record(&mut self, pc: u32, taken: bool) -> bool {
        let index = ((pc >> 2) as usize) & (self.counters.len() - 1);
        let counter = &mut self.counters[index];
        let predicted_taken = *counter >= 2;
        self.predictions += 1;
        let mispredicted = predicted_taken != taken;
        if mispredicted {
            self.mispredictions += 1;
        }
        if taken {
            *counter = (*counter + 1).min(3);
        } else {
            *counter = counter.saturating_sub(1);
        }
        mispredicted
    }

    /// Total conditional branches observed.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Branches whose direction was predicted incorrectly.
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Misprediction rate in `[0, 1]` (0 if no branches ran).
    pub fn misprediction_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }
}

/// A set-associative cache model with LRU replacement.
///
/// Tracks hits and misses only (no contents); sufficient for the hit-rate
/// statistics the paper's class of analysis reports.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: usize,
    line_shift: u32,
    /// `tags[set * associativity + way]`, `u64::MAX` = invalid;
    /// `lru` holds per-line last-use stamps.
    tags: Vec<u64>,
    lru: Vec<u64>,
    stamp: u64,
    accesses: u64,
    misses: u64,
}

impl Cache {
    /// Creates a cache model.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sizes, non-power-of-two
    /// line size, capacity not divisible by `line * associativity`).
    pub fn new(config: CacheConfig) -> Cache {
        assert!(config.line_bytes.is_power_of_two() && config.line_bytes >= 4);
        assert!(config.associativity >= 1);
        let lines = config.size_bytes / config.line_bytes;
        assert!(
            lines >= config.associativity && lines.is_multiple_of(config.associativity),
            "cache capacity must hold a whole number of sets"
        );
        let sets = lines / config.associativity;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            config,
            sets,
            line_shift: config.line_bytes.trailing_zeros(),
            tags: vec![u64::MAX; lines],
            lru: vec![0; lines],
            stamp: 0,
            accesses: 0,
            misses: 0,
        }
    }

    /// Simulates an access to `addr`; returns whether it hit.
    pub fn access(&mut self, addr: u32) -> bool {
        self.accesses += 1;
        self.stamp += 1;
        let line_addr = (addr >> self.line_shift) as u64;
        let set = (line_addr as usize) & (self.sets - 1);
        let base = set * self.config.associativity;
        let ways = &mut self.tags[base..base + self.config.associativity];
        if let Some(way) = ways.iter().position(|&t| t == line_addr) {
            self.lru[base + way] = self.stamp;
            return true;
        }
        self.misses += 1;
        // Choose the LRU way (or an invalid one).
        let victim = (0..self.config.associativity)
            .min_by_key(|&w| {
                if self.tags[base + w] == u64::MAX {
                    0
                } else {
                    self.lru[base + w] + 1
                }
            })
            .expect("associativity >= 1");
        self.tags[base + victim] = line_addr;
        self.lru[base + victim] = self.stamp;
        false
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in `[0, 1]` (1 if no accesses).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            1.0
        } else {
            1.0 - self.misses as f64 / self.accesses as f64
        }
    }
}

/// Instruction-mix accumulator: executed-instruction counts per opcode
/// class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpMix {
    counts: [u64; 7],
}

impl OpMix {
    /// Creates an empty mix.
    pub fn new() -> OpMix {
        OpMix::default()
    }

    /// Records one executed instruction.
    #[inline]
    pub fn record(&mut self, op: Op) {
        self.counts[op.class() as usize] += 1;
    }

    /// The count for a class.
    pub fn count(&self, class: OpClass) -> u64 {
        self.counts[class as usize]
    }

    /// Total instructions recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The fraction of instructions in `class` (0 if empty).
    pub fn fraction(&self, class: OpClass) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count(class) as f64 / total as f64
        }
    }

    /// Adds another mix into this one.
    pub fn merge(&mut self, other: &OpMix) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Adds `times` copies of another mix into this one (the superblock
    /// engine folds a block's static mix in once per run, scaled by its
    /// retire count, instead of once per retire).
    #[inline]
    pub fn merge_scaled(&mut self, other: &OpMix, times: u64) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b * times;
        }
    }

    /// Iterates `(class, executed count)` over every opcode class in
    /// [`OpClass::ALL`] order — the stable ordering the metrics exporters
    /// rely on.
    pub fn iter(&self) -> impl Iterator<Item = (OpClass, u64)> + '_ {
        OpClass::ALL
            .iter()
            .map(move |&class| (class, self.count(class)))
    }
}

/// The live micro-architectural models attached to a run.
#[derive(Debug, Clone)]
pub struct Uarch {
    /// Branch direction predictor.
    pub predictor: BimodalPredictor,
    /// Instruction cache.
    pub icache: Cache,
    /// Data cache.
    pub dcache: Cache,
    timing: TimingConfig,
    cycles: u64,
    stall_cycles: u64,
    last_load_rd: Option<crate::isa::Reg>,
}

impl Uarch {
    /// Instantiates the models from a configuration.
    pub fn new(config: &UarchConfig) -> Uarch {
        Uarch {
            predictor: BimodalPredictor::new(config.predictor_entries),
            icache: Cache::new(config.icache),
            dcache: Cache::new(config.dcache),
            timing: config.timing,
            cycles: 0,
            stall_cycles: 0,
            last_load_rd: None,
        }
    }

    /// Accounts for one retiring instruction at `pc`: base cycle,
    /// instruction fetch, load-use interlock, and multi-cycle ALU ops.
    /// Called by the interpreter before executing `inst`.
    pub fn retire(&mut self, pc: u32, inst: &crate::isa::Inst) {
        self.cycles += 1;
        if !self.icache.access(pc) {
            self.stall(self.timing.icache_miss_penalty);
        }
        // Load-use hazard: the previous instruction was a load whose
        // destination this instruction reads.
        if let Some(rd) = self.last_load_rd.take() {
            if rd.index() != 0 && (inst.rs1 == rd || uses_rs2(inst.op) && inst.rs2 == rd) {
                self.stall(self.timing.load_use_penalty);
            }
        }
        match inst.op.class() {
            OpClass::Load => self.last_load_rd = Some(inst.rd),
            OpClass::MulDiv => self.stall(self.timing.muldiv_latency),
            _ => {}
        }
    }

    /// Accounts for a conditional branch outcome; returns mispredicted.
    pub fn branch(&mut self, pc: u32, taken: bool) -> bool {
        let mispredicted = self.predictor.record(pc, taken);
        if mispredicted {
            self.stall(self.timing.branch_penalty);
        }
        mispredicted
    }

    /// Accounts for a data access.
    pub fn data_access(&mut self, addr: u32) {
        if !self.dcache.access(addr) {
            self.stall(self.timing.dcache_miss_penalty);
        }
    }

    fn stall(&mut self, cycles: u64) {
        self.cycles += cycles;
        self.stall_cycles += cycles;
    }

    /// Total modelled cycles so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Cycles lost to stalls (cache misses, hazards, mispredictions).
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }
}

/// Whether an opcode reads its `rs2` field.
fn uses_rs2(op: Op) -> bool {
    use Op::*;
    matches!(
        op,
        Add | Sub
            | And
            | Or
            | Xor
            | Nor
            | Sll
            | Srl
            | Sra
            | Slt
            | Sltu
            | Mul
            | Mulhu
            | Divu
            | Remu
            | Sb
            | Sh
            | Sw
            | Beq
            | Bne
            | Blt
            | Bge
            | Bltu
            | Bgeu
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictor_learns_a_loop() {
        let mut p = BimodalPredictor::new(16);
        // A branch taken 99 times then not taken once (loop exit) should
        // mispredict only a handful of times.
        for _ in 0..99 {
            p.record(0x100, true);
        }
        p.record(0x100, false);
        assert_eq!(p.predictions(), 100);
        assert!(p.mispredictions() <= 3, "{}", p.mispredictions());
        assert!(p.misprediction_rate() < 0.05);
    }

    #[test]
    fn predictor_aliasing_uses_index_bits() {
        let mut p = BimodalPredictor::new(2);
        // PCs 0x0 and 0x8 map to different entries; 0x0 and 0x10 alias.
        p.record(0x0, true);
        p.record(0x8, false);
        p.record(0x0, true);
        assert_eq!(p.predictions(), 3);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn predictor_rejects_non_power_of_two() {
        let _ = BimodalPredictor::new(3);
    }

    #[test]
    fn direct_mapped_cache_conflicts() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 64,
            line_bytes: 16,
            associativity: 1,
        });
        assert!(!c.access(0x000)); // cold miss
        assert!(c.access(0x004)); // same line
        assert!(!c.access(0x040)); // maps to set 0, evicts
        assert!(!c.access(0x000)); // conflict miss
        assert_eq!(c.accesses(), 4);
        assert_eq!(c.misses(), 3);
    }

    #[test]
    fn two_way_cache_keeps_both_lines() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 128,
            line_bytes: 16,
            associativity: 2,
        });
        assert!(!c.access(0x000));
        assert!(!c.access(0x040)); // same set, second way
        assert!(c.access(0x000));
        assert!(c.access(0x040));
        assert!(!c.access(0x080)); // evicts LRU (0x000 was used less recently? no: 0x000 used at t3)
        assert_eq!(c.misses(), 3);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 128,
            line_bytes: 16,
            associativity: 2,
        });
        c.access(0xa00); // way 0
        c.access(0xa40); // way 1 (same set: bits above line offset)
        c.access(0xa00); // touch way 0 -> way 1 is LRU
        c.access(0xa80); // evicts 0xa40
        assert!(c.access(0xa00), "0xa00 must survive");
        assert!(!c.access(0xa40), "0xa40 must have been evicted");
    }

    #[test]
    fn op_mix_fractions() {
        let mut mix = OpMix::new();
        mix.record(Op::Add);
        mix.record(Op::Addi);
        mix.record(Op::Lw);
        mix.record(Op::Beq);
        assert_eq!(mix.total(), 4);
        assert_eq!(mix.count(OpClass::Alu), 2);
        assert!((mix.fraction(OpClass::Load) - 0.25).abs() < 1e-12);
        let mut other = OpMix::new();
        other.record(Op::Sw);
        mix.merge(&other);
        assert_eq!(mix.total(), 5);
        assert_eq!(mix.count(OpClass::Store), 1);
    }
}

#[cfg(test)]
mod timing_tests {
    use super::*;
    use crate::isa::{reg, Inst};
    use crate::{Cpu, Memory, MemoryMap, Program, RunConfig};

    fn run_with_timing(insts: Vec<Inst>, timing: TimingConfig) -> crate::cpu::UarchStats {
        let map = MemoryMap::default();
        let program = Program::new(insts, map.text_base);
        let mut mem = Memory::new();
        let mut cpu = Cpu::new(&program, map);
        let config = RunConfig {
            uarch: Some(UarchConfig {
                timing,
                ..UarchConfig::default()
            }),
            ..RunConfig::default()
        };
        cpu.run(&mut mem, &config).unwrap().uarch.unwrap()
    }

    fn no_penalties() -> TimingConfig {
        TimingConfig {
            branch_penalty: 0,
            load_use_penalty: 0,
            icache_miss_penalty: 0,
            dcache_miss_penalty: 0,
            muldiv_latency: 0,
        }
    }

    #[test]
    fn ideal_pipeline_is_one_cpi() {
        let stats = run_with_timing(
            vec![
                Inst::with_imm(Op::Addi, reg::T0, reg::ZERO, 1),
                Inst::with_imm(Op::Addi, reg::T1, reg::ZERO, 2),
                Inst::jr(reg::RA),
            ],
            no_penalties(),
        );
        assert_eq!(stats.cycles, 3);
        assert_eq!(stats.stall_cycles, 0);
        assert!((stats.cpi(3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn load_use_hazard_stalls() {
        let timing = TimingConfig {
            load_use_penalty: 2,
            ..no_penalties()
        };
        // lw t0; add t1, t0, t0  -> hazard.
        let hazard = run_with_timing(
            vec![
                Inst::with_imm(Op::Lw, reg::T0, reg::GP, 0),
                Inst::rtype(Op::Add, reg::T1, reg::T0, reg::T0),
                Inst::jr(reg::RA),
            ],
            timing,
        );
        assert_eq!(hazard.stall_cycles, 2);
        // lw t0; add t1, t2, t2 -> no hazard.
        let clean = run_with_timing(
            vec![
                Inst::with_imm(Op::Lw, reg::T0, reg::GP, 0),
                Inst::rtype(Op::Add, reg::T1, reg::T2, reg::T2),
                Inst::jr(reg::RA),
            ],
            timing,
        );
        assert_eq!(clean.stall_cycles, 0);
    }

    #[test]
    fn cache_misses_and_muldiv_cost_cycles() {
        let timing = TimingConfig {
            dcache_miss_penalty: 10,
            muldiv_latency: 5,
            ..no_penalties()
        };
        let stats = run_with_timing(
            vec![
                Inst::with_imm(Op::Lw, reg::T0, reg::GP, 0), // cold miss: +10
                Inst::rtype(Op::Mul, reg::T1, reg::T2, reg::T2), // +5
                Inst::jr(reg::RA),
            ],
            timing,
        );
        assert_eq!(stats.stall_cycles, 15);
        assert_eq!(stats.cycles, 3 + 15);
    }

    #[test]
    fn mispredicted_branches_pay_penalty() {
        let timing = TimingConfig {
            branch_penalty: 7,
            ..no_penalties()
        };
        // An alternating branch defeats the bimodal predictor for a
        // guaranteed number of mispredictions >= 1.
        let stats = run_with_timing(
            vec![
                Inst::with_imm(Op::Addi, reg::T0, reg::ZERO, 0),
                Inst::with_imm(Op::Addi, reg::T1, reg::ZERO, 8),
                // loop: t0 += 1; branch to loop while t0 < t1
                Inst::with_imm(Op::Addi, reg::T0, reg::T0, 1),
                Inst::branch(Op::Blt, reg::T0, reg::T1, -8),
                Inst::jr(reg::RA),
            ],
            timing,
        );
        assert!(stats.mispredictions >= 1);
        assert_eq!(stats.stall_cycles, stats.mispredictions * 7);
    }

    #[test]
    fn stats_compose_additively() {
        let stats = run_with_timing(
            vec![
                Inst::with_imm(Op::Lw, reg::T0, reg::GP, 0),
                Inst::rtype(Op::Add, reg::T1, reg::T0, reg::T0),
                Inst::jr(reg::RA),
            ],
            TimingConfig::default(),
        );
        // cycles = instret + stalls, always.
        assert_eq!(stats.cycles, 3 + stats.stall_cycles);
        assert!(stats.cpi(3) > 1.0);
    }
}
