//! Binary encoding of NP32 instructions.
//!
//! Every instruction is one little-endian 32-bit word:
//!
//! ```text
//!  31    26 25   21 20   16 15   11 10          0
//! +--------+-------+-------+-------+-------------+
//! | opcode |  rd   |  rs1  |  rs2  |  (unused)   |   R-type
//! +--------+-------+-------+-------+-------------+
//! | opcode |  rd   |  rs1  |       imm16         |   I-type / loads
//! +--------+-------+-------+-------+-------------+
//! | opcode |  rs1  |  rs2  |       imm16         |   stores / branches
//! +--------+-------+---------------+-------------+
//! | opcode |              imm26                  |   j / jal
//! +--------+-------------------------------------+
//! ```
//!
//! Branch and jump immediates are stored as *word* offsets (the byte offset
//! divided by 4) relative to `pc + 4`, which extends the reach of the 16-
//! and 26-bit fields to ±128 KiB and ±128 MiB respectively. Arithmetic and
//! load/store immediates are stored as byte values: sign-extended for
//! `addi`/`slti`/`sltiu`/loads/stores, zero-extended for `andi`/`ori`/`xori`,
//! and raw 16-bit for `lui` (which shifts them into the upper half-word).

use crate::error::SimError;
use crate::isa::{Inst, Op, Reg};

/// Encodes a decoded instruction into its 32-bit word.
///
/// # Errors
///
/// Returns [`SimError::ImmediateOutOfRange`] if the immediate does not fit
/// its field (16 bits for I/S/B formats, 26 bits of word offset for jumps,
/// `0..32` for shift amounts).
///
/// ```
/// use npsim::encode::{encode, decode};
/// use npsim::isa::{Inst, Op, reg};
///
/// let inst = Inst::with_imm(Op::Addi, reg::A0, reg::A0, -1);
/// let word = encode(&inst)?;
/// assert_eq!(decode(word)?, inst);
/// # Ok::<(), npsim::SimError>(())
/// ```
pub fn encode(inst: &Inst) -> Result<u32, SimError> {
    use Op::*;
    let op = (inst.op.code() as u32) << 26;
    let rd = (inst.rd.number() as u32) << 21;
    let rs1 = (inst.rs1.number() as u32) << 16;
    let rs2_r = (inst.rs2.number() as u32) << 11;

    let word = match inst.op {
        Add | Sub | And | Or | Xor | Nor | Sll | Srl | Sra | Slt | Sltu | Mul | Mulhu | Divu
        | Remu => op | rd | rs1 | rs2_r,
        Jr => op | rs1,
        Jalr => op | rd | rs1,
        Addi | Slti | Sltiu => op | rd | rs1 | imm16_signed(inst)?,
        Andi | Ori | Xori => op | rd | rs1 | imm16_unsigned(inst)?,
        Slli | Srli | Srai => {
            if !(0..32).contains(&inst.imm) {
                return Err(SimError::ImmediateOutOfRange {
                    op: inst.op,
                    imm: inst.imm as i64,
                });
            }
            op | rd | rs1 | inst.imm as u32
        }
        Lui => {
            // Accept either a raw 16-bit field value or nothing else.
            if !(0..=0xffff).contains(&inst.imm) {
                return Err(SimError::ImmediateOutOfRange {
                    op: inst.op,
                    imm: inst.imm as i64,
                });
            }
            op | rd | inst.imm as u32
        }
        Lb | Lbu | Lh | Lhu | Lw => op | rd | rs1 | imm16_signed(inst)?,
        Sb | Sh | Sw => {
            // Stores reuse the rd field slot for rs1 ordering consistency:
            // layout is opcode | rs1@21 | rs2@16 | imm16.
            let base = (inst.rs1.number() as u32) << 21;
            let src = (inst.rs2.number() as u32) << 16;
            op | base | src | imm16_signed_value(inst.op, inst.imm)?
        }
        Beq | Bne | Blt | Bge | Bltu | Bgeu => {
            let r1 = (inst.rs1.number() as u32) << 21;
            let r2 = (inst.rs2.number() as u32) << 16;
            op | r1 | r2 | word_offset16(inst)?
        }
        J | Jal => op | word_offset26(inst)?,
        Sys => {
            if !(0..=0xffff).contains(&inst.imm) {
                return Err(SimError::ImmediateOutOfRange {
                    op: inst.op,
                    imm: inst.imm as i64,
                });
            }
            op | inst.imm as u32
        }
        Halt => op,
    };
    Ok(word)
}

/// Decodes a 32-bit word into an instruction.
///
/// # Errors
///
/// Returns [`SimError::InvalidOpcode`] if the opcode field does not name an
/// NP32 instruction.
pub fn decode(word: u32) -> Result<Inst, SimError> {
    use Op::*;
    let code = (word >> 26) as u8;
    let op = Op::from_code(code).ok_or(SimError::InvalidOpcode { word })?;
    let rd = Reg::new(((word >> 21) & 31) as u8);
    let rs1 = Reg::new(((word >> 16) & 31) as u8);
    let rs2 = Reg::new(((word >> 11) & 31) as u8);
    let imm16 = (word & 0xffff) as u16;

    let inst = match op {
        Add | Sub | And | Or | Xor | Nor | Sll | Srl | Sra | Slt | Sltu | Mul | Mulhu | Divu
        | Remu => Inst::rtype(op, rd, rs1, rs2),
        Jr => Inst::jr(rs1),
        Jalr => Inst {
            op,
            rd,
            rs1,
            rs2: crate::isa::reg::ZERO,
            imm: 0,
        },
        Addi | Slti | Sltiu => Inst::with_imm(op, rd, rs1, imm16 as i16 as i32),
        Andi | Ori | Xori => Inst::with_imm(op, rd, rs1, imm16 as i32),
        Slli | Srli | Srai => Inst::with_imm(op, rd, rs1, (word & 31) as i32),
        Lui => Inst::lui(rd, imm16 as i32),
        Lb | Lbu | Lh | Lhu | Lw => Inst::with_imm(op, rd, rs1, imm16 as i16 as i32),
        Sb | Sh | Sw => {
            let base = rd; // field at bit 21
            let src = rs1; // field at bit 16
            Inst::store(op, src, base, imm16 as i16 as i32)
        }
        Beq | Bne | Blt | Bge | Bltu | Bgeu => {
            let r1 = rd;
            let r2 = rs1;
            Inst::branch(op, r1, r2, (imm16 as i16 as i32) << 2)
        }
        J | Jal => {
            let imm26 = word & 0x03ff_ffff;
            // Sign-extend 26-bit word offset, convert to bytes.
            let signed = ((imm26 << 6) as i32) >> 6;
            Inst::jump(op, signed << 2)
        }
        Sys => Inst::sys(imm16 as u32),
        Halt => Inst::halt(),
    };
    Ok(inst)
}

/// Encodes a slice of instructions into little-endian bytes.
///
/// # Errors
///
/// Fails if any instruction fails to [`encode`].
pub fn encode_all(insts: &[Inst]) -> Result<Vec<u8>, SimError> {
    let mut bytes = Vec::with_capacity(insts.len() * 4);
    for inst in insts {
        bytes.extend_from_slice(&encode(inst)?.to_le_bytes());
    }
    Ok(bytes)
}

/// Decodes little-endian bytes into instructions.
///
/// # Errors
///
/// Fails on a trailing partial word or any invalid opcode.
pub fn decode_all(bytes: &[u8]) -> Result<Vec<Inst>, SimError> {
    if !bytes.len().is_multiple_of(4) {
        return Err(SimError::TruncatedText { len: bytes.len() });
    }
    bytes
        .chunks_exact(4)
        .map(|c| decode(u32::from_le_bytes([c[0], c[1], c[2], c[3]])))
        .collect()
}

fn imm16_signed(inst: &Inst) -> Result<u32, SimError> {
    imm16_signed_value(inst.op, inst.imm)
}

fn imm16_signed_value(op: Op, imm: i32) -> Result<u32, SimError> {
    if !(-(1 << 15)..(1 << 15)).contains(&imm) {
        return Err(SimError::ImmediateOutOfRange {
            op,
            imm: imm as i64,
        });
    }
    Ok((imm as u32) & 0xffff)
}

fn imm16_unsigned(inst: &Inst) -> Result<u32, SimError> {
    if !(0..=0xffff).contains(&inst.imm) {
        return Err(SimError::ImmediateOutOfRange {
            op: inst.op,
            imm: inst.imm as i64,
        });
    }
    Ok(inst.imm as u32)
}

fn word_offset16(inst: &Inst) -> Result<u32, SimError> {
    if inst.imm % 4 != 0 {
        return Err(SimError::MisalignedOffset {
            op: inst.op,
            imm: inst.imm,
        });
    }
    let words = inst.imm >> 2;
    if !(-(1 << 15)..(1 << 15)).contains(&words) {
        return Err(SimError::ImmediateOutOfRange {
            op: inst.op,
            imm: inst.imm as i64,
        });
    }
    Ok((words as u32) & 0xffff)
}

fn word_offset26(inst: &Inst) -> Result<u32, SimError> {
    if inst.imm % 4 != 0 {
        return Err(SimError::MisalignedOffset {
            op: inst.op,
            imm: inst.imm,
        });
    }
    let words = inst.imm >> 2;
    if !(-(1 << 25)..(1 << 25)).contains(&words) {
        return Err(SimError::ImmediateOutOfRange {
            op: inst.op,
            imm: inst.imm as i64,
        });
    }
    Ok((words as u32) & 0x03ff_ffff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::reg;

    fn round_trip(inst: Inst) {
        let word = encode(&inst).expect("encode");
        let back = decode(word).expect("decode");
        assert_eq!(back, inst, "word {word:#010x}");
    }

    #[test]
    fn round_trip_representative_instructions() {
        round_trip(Inst::rtype(Op::Add, reg::A0, reg::A1, reg::A2));
        round_trip(Inst::rtype(Op::Mulhu, reg::T7, reg::S9, reg::AT));
        round_trip(Inst::with_imm(Op::Addi, reg::SP, reg::SP, -32));
        round_trip(Inst::with_imm(Op::Andi, reg::T0, reg::T1, 0xffff));
        round_trip(Inst::with_imm(Op::Slli, reg::T0, reg::T0, 31));
        round_trip(Inst::lui(reg::GP, 0x2000));
        round_trip(Inst::with_imm(Op::Lw, reg::T0, reg::GP, 0x7ffc));
        round_trip(Inst::with_imm(Op::Lb, reg::T0, reg::A0, -128));
        round_trip(Inst::store(Op::Sw, reg::T0, reg::SP, -4));
        round_trip(Inst::store(Op::Sb, reg::A5, reg::A0, 19));
        round_trip(Inst::branch(Op::Beq, reg::A0, reg::ZERO, 4096));
        round_trip(Inst::branch(Op::Bgeu, reg::T8, reg::T9, -4));
        round_trip(Inst::jump(Op::J, -400));
        round_trip(Inst::jump(Op::Jal, 1 << 20));
        round_trip(Inst::jr(reg::RA));
        round_trip(Inst {
            op: Op::Jalr,
            rd: reg::RA,
            rs1: reg::T0,
            rs2: reg::ZERO,
            imm: 0,
        });
        round_trip(Inst::sys(3));
        round_trip(Inst::halt());
    }

    #[test]
    fn immediate_range_checks() {
        assert!(encode(&Inst::with_imm(Op::Addi, reg::A0, reg::A0, 40000)).is_err());
        assert!(encode(&Inst::with_imm(Op::Andi, reg::A0, reg::A0, -1)).is_err());
        assert!(encode(&Inst::with_imm(Op::Slli, reg::A0, reg::A0, 32)).is_err());
        assert!(encode(&Inst::branch(Op::Beq, reg::A0, reg::A0, 3)).is_err());
        assert!(encode(&Inst::branch(Op::Beq, reg::A0, reg::A0, 1 << 20)).is_err());
        assert!(encode(&Inst::jump(Op::J, 2)).is_err());
    }

    #[test]
    fn branch_offsets_scale_by_four() {
        let inst = Inst::branch(Op::Bne, reg::A0, reg::A1, 32768);
        // 32768 bytes = 8192 words, fits in 16-bit field even though the
        // byte value does not.
        round_trip(inst);
    }

    #[test]
    fn invalid_opcode_rejected() {
        let word = 15u32 << 26;
        assert!(matches!(decode(word), Err(SimError::InvalidOpcode { .. })));
    }

    #[test]
    fn bulk_round_trip() {
        let insts = vec![
            Inst::nop(),
            Inst::with_imm(Op::Addi, reg::A0, reg::ZERO, 1),
            Inst::jr(reg::RA),
        ];
        let bytes = encode_all(&insts).unwrap();
        assert_eq!(bytes.len(), 12);
        assert_eq!(decode_all(&bytes).unwrap(), insts);
        assert!(decode_all(&bytes[..7]).is_err());
    }
}
