//! The NP32 interpreter and its per-run statistics.
//!
//! A [`Cpu`] executes a [`Program`] against a [`Memory`] until the program
//! returns to the framework (jumping to [`crate::RETURN_SENTINEL`]), executes
//! `halt`, or a [`SysHandler`] stops the run. Every run produces a
//! [`RunStats`] carrying the paper's per-packet raw material: instruction
//! counts, the executed-instruction bit set, region-classified memory access
//! counts, and (optionally) full PC and memory traces plus
//! micro-architectural model results.

use crate::bblock::{BlockTable, TermKind, UOp, UOpKind};
use crate::error::SimError;
use crate::isa::{Inst, Op, Reg};
use crate::mem::{AccessKind, MemEvent, Memory, MemoryMap, Region};
use crate::obs::{NullObserver, Observer};
use crate::trace::{Guard, TraceEntry};
use crate::uarch::{OpMix, Uarch, UarchConfig};
use crate::util::BitSet;
use crate::RETURN_SENTINEL;

/// An executable NP32 text image: decoded instructions at a base address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    insts: Vec<Inst>,
    text_base: u32,
}

impl Program {
    /// Wraps decoded instructions placed at `text_base`.
    pub fn new(insts: Vec<Inst>, text_base: u32) -> Program {
        Program { insts, text_base }
    }

    /// The instructions.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// The base address of the text.
    pub fn text_base(&self) -> u32 {
        self.text_base
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Text size in bytes.
    pub fn text_bytes(&self) -> u32 {
        (self.insts.len() * 4) as u32
    }

    /// Converts a PC to an instruction index, if it falls in the text.
    pub fn index_of(&self, pc: u32) -> Option<usize> {
        if pc < self.text_base || !pc.is_multiple_of(4) {
            return None;
        }
        let index = ((pc - self.text_base) / 4) as usize;
        (index < self.insts.len()).then_some(index)
    }

    /// Converts an instruction index to its PC.
    pub fn pc_of(&self, index: usize) -> u32 {
        self.text_base + (index as u32) * 4
    }
}

/// Why a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HaltReason {
    /// The program jumped to [`crate::RETURN_SENTINEL`] — the normal
    /// "application returned to framework" path.
    Returned,
    /// The program executed `halt`.
    Halted,
    /// A [`SysHandler`] requested the run stop.
    SysStop,
}

/// What a [`SysHandler`] wants the interpreter to do after a `sys`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SysOutcome {
    /// Resume at the next instruction.
    Continue,
    /// End the run with [`HaltReason::SysStop`].
    Stop,
}

/// Handler for the `sys` instruction — the PacketBench API boundary.
///
/// The framework installs a handler that implements `send_packet`,
/// `drop_packet`, and `write_packet_to_file`. Work done inside the handler
/// runs on the host and is *not* counted in the statistics, mirroring the
/// paper's selective accounting of framework functions.
pub trait SysHandler {
    /// Handles `sys code`. May read and write registers and memory.
    ///
    /// # Errors
    ///
    /// Implementations should return [`SimError::UnknownSyscall`] for call
    /// numbers they do not implement.
    fn sys(
        &mut self,
        code: u32,
        regs: &mut [u32; 32],
        mem: &mut Memory,
    ) -> Result<SysOutcome, SimError>;
}

/// A handler that rejects every `sys` — the default for programs that are
/// not supposed to call the framework.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoSys;

impl SysHandler for NoSys {
    fn sys(
        &mut self,
        code: u32,
        _regs: &mut [u32; 32],
        _mem: &mut Memory,
    ) -> Result<SysOutcome, SimError> {
        Err(SimError::UnknownSyscall { code, pc: 0 })
    }
}

/// Per-run recording options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunConfig {
    /// Abort with [`SimError::InstructionBudgetExceeded`] after this many
    /// instructions — a guard against non-terminating programs.
    pub max_instructions: u64,
    /// Record the full sequence of executed PCs (paper Fig. 6).
    pub record_pc_trace: bool,
    /// Record every data-memory access as a [`MemEvent`]
    /// (paper Fig. 9, Table IV).
    pub record_mem_trace: bool,
    /// Attach micro-architectural models.
    pub uarch: Option<UarchConfig>,
}

impl Default for RunConfig {
    fn default() -> RunConfig {
        RunConfig {
            max_instructions: 50_000_000,
            record_pc_trace: false,
            record_mem_trace: false,
            uarch: None,
        }
    }
}

/// Region-classified counts of data-memory accesses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemCounts {
    /// Loads from the packet buffer.
    pub packet_reads: u64,
    /// Stores to the packet buffer.
    pub packet_writes: u64,
    /// Loads from program data.
    pub data_reads: u64,
    /// Stores to program data.
    pub data_writes: u64,
    /// Loads from the stack.
    pub stack_reads: u64,
    /// Stores to the stack.
    pub stack_writes: u64,
    /// Accesses outside all mapped regions.
    pub other: u64,
}

impl MemCounts {
    /// Accesses to packet memory (paper Table III, "Packet").
    pub fn packet_total(&self) -> u64 {
        self.packet_reads + self.packet_writes
    }

    /// Accesses to non-packet data memory (paper Table III, "Non-packet"):
    /// program data, stack, and unmapped addresses.
    pub fn non_packet_total(&self) -> u64 {
        self.data_reads + self.data_writes + self.stack_reads + self.stack_writes + self.other
    }

    /// All data-memory accesses.
    pub fn total(&self) -> u64 {
        self.packet_total() + self.non_packet_total()
    }

    /// Counts one classified access. Public so alternative interpreters
    /// (the conformance reference model) account accesses through the
    /// exact same bucketing as the optimized loops.
    #[inline]
    pub fn record(&mut self, region: Region, kind: AccessKind) {
        match (region, kind) {
            (Region::Packet, AccessKind::Read) => self.packet_reads += 1,
            (Region::Packet, AccessKind::Write) => self.packet_writes += 1,
            (Region::ProgramData, AccessKind::Read) => self.data_reads += 1,
            (Region::ProgramData, AccessKind::Write) => self.data_writes += 1,
            (Region::Stack, AccessKind::Read) => self.stack_reads += 1,
            (Region::Stack, AccessKind::Write) => self.stack_writes += 1,
            _ => self.other += 1,
        }
    }

    /// Counts a pre-classified group of accesses in one shot — the block
    /// engine's fused retire path. Equivalent to `reads + writes` calls to
    /// [`MemCounts::record`] with the same region, because every bucket is
    /// a plain sum.
    #[inline]
    pub fn record_group(&mut self, region: Region, reads: u64, writes: u64) {
        match region {
            Region::Packet => {
                self.packet_reads += reads;
                self.packet_writes += writes;
            }
            Region::ProgramData => {
                self.data_reads += reads;
                self.data_writes += writes;
            }
            Region::Stack => {
                self.stack_reads += reads;
                self.stack_writes += writes;
            }
            _ => self.other += reads + writes,
        }
    }

    /// Adds another count set into this one.
    pub fn merge(&mut self, other: &MemCounts) {
        self.packet_reads += other.packet_reads;
        self.packet_writes += other.packet_writes;
        self.data_reads += other.data_reads;
        self.data_writes += other.data_writes;
        self.stack_reads += other.stack_reads;
        self.stack_writes += other.stack_writes;
        self.other += other.other;
    }
}

/// Micro-architectural results of a run (present when
/// [`RunConfig::uarch`] was set).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UarchStats {
    /// Conditional branches executed.
    pub branches: u64,
    /// Conditional branches mispredicted by the bimodal predictor.
    pub mispredictions: u64,
    /// Instruction-cache accesses.
    pub icache_accesses: u64,
    /// Instruction-cache misses.
    pub icache_misses: u64,
    /// Data-cache accesses.
    pub dcache_accesses: u64,
    /// Data-cache misses.
    pub dcache_misses: u64,
    /// Modelled pipeline cycles (see [`crate::uarch::TimingConfig`]).
    pub cycles: u64,
    /// Cycles lost to stalls (cache misses, hazards, mispredictions).
    pub stall_cycles: u64,
}

impl UarchStats {
    /// Cycles per instruction under the timing model.
    pub fn cpi(&self, instret: u64) -> f64 {
        if instret == 0 {
            0.0
        } else {
            self.cycles as f64 / instret as f64
        }
    }
}

/// Everything recorded about one run (one packet, in PacketBench terms).
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Instructions executed.
    pub instret: u64,
    /// Executed-instruction counts by opcode class.
    pub op_mix: OpMix,
    /// Which static instructions executed at least once
    /// (index = instruction index in the program).
    pub executed: BitSet,
    /// Region-classified data-memory access counts.
    pub mem: MemCounts,
    /// Executed PCs in order (empty unless requested).
    pub pc_trace: Vec<u32>,
    /// Data-memory accesses in order (empty unless requested).
    pub mem_trace: Vec<MemEvent>,
    /// Why the run ended.
    pub halt: HaltReason,
    /// Micro-architectural model results, if models were attached.
    pub uarch: Option<UarchStats>,
}

impl RunStats {
    /// The number of *unique* static instructions executed
    /// (paper Table VI / Fig. 6 y-axis).
    pub fn unique_instructions(&self) -> usize {
        self.executed.count()
    }

    /// Empty statistics sized for a program of `len` static instructions.
    pub fn for_program(len: usize) -> RunStats {
        RunStats {
            instret: 0,
            op_mix: OpMix::new(),
            executed: BitSet::new(len),
            mem: MemCounts::default(),
            pc_trace: Vec::new(),
            mem_trace: Vec::new(),
            halt: HaltReason::Returned,
            uarch: None,
        }
    }

    /// Resets every counter for a program of `len` static instructions,
    /// reusing the existing allocations when capacities match — this is
    /// what makes repeated packet runs allocation-free.
    pub fn reset_for(&mut self, len: usize) {
        self.instret = 0;
        self.op_mix = OpMix::new();
        if self.executed.capacity() == len {
            self.executed.clear();
        } else {
            self.executed = BitSet::new(len);
        }
        self.mem = MemCounts::default();
        self.pc_trace.clear();
        self.mem_trace.clear();
        self.halt = HaltReason::Returned;
        self.uarch = None;
    }
}

/// A complete architectural-state snapshot: the register file and the PC.
///
/// Two interpreters that agree on [`RunStats`] *and* on `CpuState` (and on
/// a [`crate::Memory::digest`] of memory) after every run are
/// architecturally indistinguishable — this is the comparison surface of
/// the differential conformance harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CpuState {
    /// The register file (`regs[0]` is zero by construction).
    pub regs: [u32; 32],
    /// The program counter after the run.
    pub pc: u32,
}

/// Which of the monomorphized interpreter loops to run.
///
/// [`Cpu::run_into`] picks automatically; the conformance harness forces
/// each loop in turn so both are differentially tested against the
/// reference model under identical inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecPath {
    /// Pick from the [`RunConfig`]: counts-only when no traces and no
    /// uarch models are requested, full otherwise.
    Auto,
    /// Force the counts-only loop. Trace flags and uarch models in the
    /// config are ignored (that loop cannot record them).
    Counts,
    /// Force the full-detail loop, even for a counts-only config.
    Full,
    /// Force the superblock engine: counts-only accounting retired at
    /// basic-block granularity through a [`BlockTable`] (one is built on
    /// the fly if the CPU was not given one via [`Cpu::with_blocks`]).
    /// Trace flags and uarch models are ignored, as with
    /// [`ExecPath::Counts`]; per-instruction observer hooks only fire on
    /// the engine's fallback paths (see [`Observer::BLOCK_LEVEL`]).
    /// Hot-trace formation stays off: this is the pure block-level leg.
    Block,
    /// Force the superblock engine *with* the hot-trace layer: after the
    /// table's warm-up, biased block chains fuse into traces retired with
    /// one delta per complete trip (see [`crate::trace`]). Observable
    /// outcomes are bit-identical to [`ExecPath::Block`]; this is the
    /// trace engine's differential-conformance leg.
    Trace,
}

/// Where control lands after a trip through a fused trace: either at a
/// known block leader (stay in the chained dispatch loop) or at a pc the
/// table has no leader for (fall back to cold per-instruction dispatch).
enum TraceExit {
    Block(usize),
    Cold,
}

/// A pluggable NP32 interpreter: anything that can boot, be seeded, run a
/// program against a [`Memory`], and expose its architectural state.
///
/// [`Cpu`] (the optimized simulator) implements this; the conformance
/// crate's deliberately-simple reference interpreter implements it too, so
/// the framework can drive either through one code path.
pub trait Interpreter {
    /// Returns to the boot state: registers cleared, `sp`/`ra`/`gp` seeded
    /// from the memory map, PC at the text base.
    fn reset(&mut self);

    /// Sets the program counter.
    fn set_pc(&mut self, pc: u32);

    /// Writes a register (writes to `zero` are discarded).
    fn set_reg(&mut self, r: Reg, value: u32);

    /// Snapshots the architectural state.
    fn state(&self) -> CpuState;

    /// Runs until the program returns, halts, is stopped by the handler,
    /// or errors, recording into caller-provided statistics.
    ///
    /// # Errors
    ///
    /// See [`Cpu::run_with`].
    fn run_into(
        &mut self,
        mem: &mut Memory,
        config: &RunConfig,
        handler: &mut dyn SysHandler,
        stats: &mut RunStats,
    ) -> Result<(), SimError>;
}

/// The NP32 interpreter.
///
/// The register file and PC are public: the framework seeds `a0`/`a1` with
/// the packet pointer and length, `gp` with the data base, `sp` with the
/// stack top, and `ra` with [`crate::RETURN_SENTINEL`] before each packet.
#[derive(Debug)]
pub struct Cpu<'p> {
    /// The register file (`regs[0]` stays zero).
    pub regs: [u32; 32],
    /// The program counter.
    pub pc: u32,
    program: &'p Program,
    map: MemoryMap,
    /// Predecoded superblock table for the block engine, when the caller
    /// shares one (PacketBench builds it once per app).
    blocks: Option<&'p BlockTable>,
    /// Times the superblock engine bailed out to the per-instruction
    /// loop (mid-block entry or instruction-budget risk). Telemetry
    /// only — cumulative across [`Cpu::reset`], never part of
    /// [`RunStats`], so conformance comparisons stay untouched.
    block_bailouts: u64,
}

impl<'p> Cpu<'p> {
    /// Creates a CPU positioned at the program's first instruction, with
    /// `sp` at the map's stack top and `ra` at the return sentinel.
    pub fn new(program: &'p Program, map: MemoryMap) -> Cpu<'p> {
        let mut regs = [0u32; 32];
        regs[crate::reg::SP.index()] = map.stack_top;
        regs[crate::reg::RA.index()] = RETURN_SENTINEL;
        regs[crate::reg::GP.index()] = map.data_base;
        Cpu {
            regs,
            pc: program.text_base(),
            program,
            map,
            blocks: None,
            block_bailouts: 0,
        }
    }

    /// Attaches a predecoded [`BlockTable`] (built from the same program),
    /// making counts-only runs eligible for the superblock engine under
    /// [`ExecPath::Auto`]. Without a table, [`ExecPath::Auto`] keeps the
    /// per-instruction counts loop and [`ExecPath::Block`] builds a
    /// throwaway table per run.
    pub fn with_blocks(mut self, table: &'p BlockTable) -> Cpu<'p> {
        self.blocks = Some(table);
        self
    }

    /// The memory map in force.
    pub fn map(&self) -> MemoryMap {
        self.map
    }

    /// Times the superblock engine bailed out to the per-instruction
    /// loop since construction. Pure telemetry: bail-outs are a
    /// deterministic function of program + input, and never affect
    /// [`RunStats`].
    pub fn block_bailouts(&self) -> u64 {
        self.block_bailouts
    }

    /// Returns to the boot state [`Cpu::new`] leaves the CPU in, so one
    /// CPU can be reused across packets.
    pub fn reset(&mut self) {
        self.regs = [0u32; 32];
        self.regs[crate::reg::SP.index()] = self.map.stack_top;
        self.regs[crate::reg::RA.index()] = RETURN_SENTINEL;
        self.regs[crate::reg::GP.index()] = self.map.data_base;
        self.pc = self.program.text_base();
    }

    /// Snapshots the architectural state (registers + PC).
    pub fn state(&self) -> CpuState {
        CpuState {
            regs: self.regs,
            pc: self.pc,
        }
    }

    /// Reads a register.
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Writes a register (writes to `zero` are discarded).
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        if r.index() != 0 {
            self.regs[r.index()] = value;
        }
    }

    /// Runs until the program returns, halts, or errors, rejecting `sys`.
    ///
    /// # Errors
    ///
    /// See [`Cpu::run_with`].
    pub fn run(&mut self, mem: &mut Memory, config: &RunConfig) -> Result<RunStats, SimError> {
        self.run_with(mem, config, &mut NoSys)
    }

    /// Runs until the program returns, halts, is stopped by the handler, or
    /// errors.
    ///
    /// # Errors
    ///
    /// * [`SimError::PcOutOfRange`] / [`SimError::MisalignedPc`] — control
    ///   flow escaped the text region.
    /// * [`SimError::InstructionBudgetExceeded`] — ran past
    ///   [`RunConfig::max_instructions`].
    /// * Any error returned by the [`SysHandler`].
    pub fn run_with(
        &mut self,
        mem: &mut Memory,
        config: &RunConfig,
        handler: &mut dyn SysHandler,
    ) -> Result<RunStats, SimError> {
        let mut stats = RunStats::for_program(self.program.len());
        self.run_into(mem, config, handler, &mut stats)?;
        Ok(stats)
    }

    /// Like [`Cpu::run_with`], but records into caller-provided statistics
    /// (reset on entry), so a run performs no heap allocation when `stats`
    /// is reused across packets and no traces are requested.
    ///
    /// On error `stats` holds whatever was recorded up to the fault.
    ///
    /// # Errors
    ///
    /// See [`Cpu::run_with`].
    pub fn run_into(
        &mut self,
        mem: &mut Memory,
        config: &RunConfig,
        handler: &mut dyn SysHandler,
        stats: &mut RunStats,
    ) -> Result<(), SimError> {
        self.run_into_path(mem, config, handler, stats, ExecPath::Auto)
    }

    /// Like [`Cpu::run_into`], but lets the caller force one of the two
    /// monomorphized loops. The differential conformance harness uses this
    /// to test the counts-only and full-detail loops separately against
    /// the reference interpreter; everything else should use
    /// [`ExecPath::Auto`].
    ///
    /// With [`ExecPath::Counts`] forced, trace flags and uarch models in
    /// `config` are ignored.
    ///
    /// # Errors
    ///
    /// See [`Cpu::run_with`].
    pub fn run_into_path(
        &mut self,
        mem: &mut Memory,
        config: &RunConfig,
        handler: &mut dyn SysHandler,
        stats: &mut RunStats,
        path: ExecPath,
    ) -> Result<(), SimError> {
        self.run_into_path_observed(mem, config, handler, stats, path, &mut NullObserver)
    }

    /// Like [`Cpu::run_into`], but streams every retired instruction and
    /// classified memory access into an [`Observer`].
    ///
    /// The observer is a monomorphized type parameter, never a trait
    /// object: instantiated with [`NullObserver`] this is exactly
    /// [`Cpu::run_into`], at zero cost. The `npobs` crate's basic-block
    /// heat profiler attaches here.
    ///
    /// # Errors
    ///
    /// See [`Cpu::run_with`].
    pub fn run_observed<O: Observer>(
        &mut self,
        mem: &mut Memory,
        config: &RunConfig,
        handler: &mut dyn SysHandler,
        stats: &mut RunStats,
        obs: &mut O,
    ) -> Result<(), SimError> {
        self.run_into_path_observed(mem, config, handler, stats, ExecPath::Auto, obs)
    }

    /// The fully-general entry point: forced execution path plus observer.
    /// Everything else is sugar over this.
    ///
    /// # Errors
    ///
    /// See [`Cpu::run_with`].
    pub fn run_into_path_observed<O: Observer>(
        &mut self,
        mem: &mut Memory,
        config: &RunConfig,
        handler: &mut dyn SysHandler,
        stats: &mut RunStats,
        path: ExecPath,
        obs: &mut O,
    ) -> Result<(), SimError> {
        stats.reset_for(self.program.len());
        obs.on_run_start();
        let counts_only = match path {
            // Two monomorphic loops: the lean one drops every
            // per-instruction branch that only matters when traces or
            // uarch models are on, which is what `Detail::counts()` runs
            // all day.
            ExecPath::Auto => {
                config.uarch.is_none() && !config.record_pc_trace && !config.record_mem_trace
            }
            ExecPath::Counts | ExecPath::Block | ExecPath::Trace => true,
            ExecPath::Full => false,
        };
        // Counts-only runs step up to block granularity when a predecoded
        // table is attached and the observer accepts block-level events;
        // the conformance harness can also force the engine outright.
        let use_blocks = match path {
            ExecPath::Auto => counts_only && O::BLOCK_LEVEL && self.blocks.is_some(),
            ExecPath::Block | ExecPath::Trace => true,
            _ => false,
        };
        // And further up to trace granularity when the observer needs no
        // events at all inside fused trips; [`ExecPath::Block`] stays
        // trace-free so the pure block leg remains differentially
        // testable on its own.
        let use_traces = match path {
            ExecPath::Auto => use_blocks && O::TRACE_LEVEL,
            ExecPath::Trace => true,
            _ => false,
        };
        let mut uarch = if counts_only {
            None
        } else {
            config.uarch.as_ref().map(Uarch::new)
        };
        if use_blocks {
            if let Some(table) = self.blocks {
                if use_traces {
                    self.exec_blocks::<true, O>(mem, config, handler, stats, table, obs)?;
                } else {
                    self.exec_blocks::<false, O>(mem, config, handler, stats, table, obs)?;
                }
            } else {
                let table = BlockTable::build(self.program);
                if use_traces {
                    self.exec_blocks::<true, O>(mem, config, handler, stats, &table, obs)?;
                } else {
                    self.exec_blocks::<false, O>(mem, config, handler, stats, &table, obs)?;
                }
            }
        } else if counts_only {
            self.exec::<false, O>(mem, config, handler, stats, &mut uarch, obs)?;
        } else {
            self.exec::<true, O>(mem, config, handler, stats, &mut uarch, obs)?;
        }

        if let Some(u) = uarch {
            stats.uarch = Some(UarchStats {
                branches: u.predictor.predictions(),
                mispredictions: u.predictor.mispredictions(),
                icache_accesses: u.icache.accesses(),
                icache_misses: u.icache.misses(),
                dcache_accesses: u.dcache.accesses(),
                dcache_misses: u.dcache.misses(),
                cycles: u.cycles(),
                stall_cycles: u.stall_cycles(),
            });
        }
        Ok(())
    }

    /// The interpreter loop. `FULL` compiles in PC/memory tracing and the
    /// uarch hooks; `FULL = false` requires `uarch` to be `None` and both
    /// trace flags off, and records only what `Detail::counts()` needs.
    /// `O` is the monomorphized observer; with [`NullObserver`] every hook
    /// folds away and both loops are byte-for-byte the unobserved loops.
    fn exec<const FULL: bool, O: Observer>(
        &mut self,
        mem: &mut Memory,
        config: &RunConfig,
        handler: &mut dyn SysHandler,
        stats: &mut RunStats,
        uarch: &mut Option<Uarch>,
        obs: &mut O,
    ) -> Result<(), SimError> {
        // Hoist the dispatch state: the program reference outlives `self`'s
        // borrow, so the fetch below is one fused compare and an index.
        let program: &'p Program = self.program;
        let text_base = program.text_base();
        let insts = program.insts();
        let max_instructions = config.max_instructions;
        // The fused range check below folds the sentinel test into the
        // out-of-range cold path; that is only sound while the sentinel
        // cannot alias a text address.
        debug_assert!(
            ((RETURN_SENTINEL.wrapping_sub(text_base) >> 2) as usize) >= insts.len(),
            "return sentinel aliases the text region"
        );

        loop {
            // One branch on the hot path: in-range, 4-aligned PCs fall
            // through; sentinel, misaligned, and escaped PCs all land in
            // the cold arm, which re-checks in the documented order.
            let offset = self.pc.wrapping_sub(text_base);
            let index = (offset >> 2) as usize;
            if offset & 3 != 0 || index >= insts.len() {
                if self.pc == RETURN_SENTINEL {
                    stats.halt = HaltReason::Returned;
                    break;
                }
                if !self.pc.is_multiple_of(4) {
                    return Err(SimError::MisalignedPc { pc: self.pc });
                }
                return Err(SimError::PcOutOfRange { pc: self.pc });
            }
            if stats.instret >= max_instructions {
                return Err(SimError::InstructionBudgetExceeded {
                    limit: max_instructions,
                });
            }
            let inst = insts[index];
            stats.instret += 1;
            stats.executed.insert(index);
            stats.op_mix.record(inst.op);
            obs.on_inst(self.pc, index, &inst);
            if FULL {
                if config.record_pc_trace {
                    stats.pc_trace.push(self.pc);
                }
                if let Some(u) = uarch.as_mut() {
                    u.retire(self.pc, &inst);
                }
            }

            let next_pc = self.pc.wrapping_add(4);
            let mut target = next_pc;

            macro_rules! load {
                ($addr:expr, $size:expr) => {{
                    let addr: u32 = $addr;
                    if FULL {
                        self.note_access(
                            &mut *stats,
                            uarch.as_mut(),
                            config,
                            addr,
                            $size,
                            AccessKind::Read,
                            &mut *obs,
                        );
                    } else {
                        let region = self.map.region(addr);
                        stats.mem.record(region, AccessKind::Read);
                        obs.on_mem(addr, $size, AccessKind::Read, region);
                    }
                    addr
                }};
            }
            macro_rules! store {
                ($addr:expr, $size:expr) => {{
                    let addr: u32 = $addr;
                    if FULL {
                        self.note_access(
                            &mut *stats,
                            uarch.as_mut(),
                            config,
                            addr,
                            $size,
                            AccessKind::Write,
                            &mut *obs,
                        );
                    } else {
                        let region = self.map.region(addr);
                        stats.mem.record(region, AccessKind::Write);
                        obs.on_mem(addr, $size, AccessKind::Write, region);
                    }
                    addr
                }};
            }

            let rs1 = self.regs[inst.rs1.index()];
            let rs2 = self.regs[inst.rs2.index()];
            let imm = inst.imm;
            let rd = inst.rd.index();

            // Arms write `regs[rd]` unconditionally; the `regs[0] = 0`
            // after the match undoes any write to the zero register, which
            // trades a data-dependent branch per ALU op for one store.
            match inst.op {
                Op::Add => self.regs[rd] = rs1.wrapping_add(rs2),
                Op::Sub => self.regs[rd] = rs1.wrapping_sub(rs2),
                Op::And => self.regs[rd] = rs1 & rs2,
                Op::Or => self.regs[rd] = rs1 | rs2,
                Op::Xor => self.regs[rd] = rs1 ^ rs2,
                Op::Nor => self.regs[rd] = !(rs1 | rs2),
                Op::Sll => self.regs[rd] = rs1.wrapping_shl(rs2 & 31),
                Op::Srl => self.regs[rd] = rs1.wrapping_shr(rs2 & 31),
                Op::Sra => self.regs[rd] = ((rs1 as i32).wrapping_shr(rs2 & 31)) as u32,
                Op::Slt => self.regs[rd] = ((rs1 as i32) < (rs2 as i32)) as u32,
                Op::Sltu => self.regs[rd] = (rs1 < rs2) as u32,
                Op::Mul => self.regs[rd] = rs1.wrapping_mul(rs2),
                Op::Mulhu => self.regs[rd] = ((rs1 as u64 * rs2 as u64) >> 32) as u32,
                Op::Divu => self.regs[rd] = rs1.checked_div(rs2).unwrap_or(u32::MAX),
                Op::Remu => self.regs[rd] = if rs2 == 0 { rs1 } else { rs1 % rs2 },
                Op::Addi => self.regs[rd] = rs1.wrapping_add(imm as u32),
                Op::Andi => self.regs[rd] = rs1 & (imm as u32),
                Op::Ori => self.regs[rd] = rs1 | (imm as u32),
                Op::Xori => self.regs[rd] = rs1 ^ (imm as u32),
                Op::Slli => self.regs[rd] = rs1.wrapping_shl(imm as u32),
                Op::Srli => self.regs[rd] = rs1.wrapping_shr(imm as u32),
                Op::Srai => self.regs[rd] = ((rs1 as i32).wrapping_shr(imm as u32)) as u32,
                Op::Slti => self.regs[rd] = ((rs1 as i32) < imm) as u32,
                Op::Sltiu => self.regs[rd] = (rs1 < imm as u32) as u32,
                Op::Lui => self.regs[rd] = (imm as u32) << 16,
                Op::Lb => {
                    let addr = load!(rs1.wrapping_add(imm as u32), 1);
                    self.regs[rd] = mem.read_u8(addr) as i8 as i32 as u32;
                }
                Op::Lbu => {
                    let addr = load!(rs1.wrapping_add(imm as u32), 1);
                    self.regs[rd] = mem.read_u8(addr) as u32;
                }
                Op::Lh => {
                    let addr = load!(rs1.wrapping_add(imm as u32), 2);
                    self.regs[rd] = mem.read_u16(addr) as i16 as i32 as u32;
                }
                Op::Lhu => {
                    let addr = load!(rs1.wrapping_add(imm as u32), 2);
                    self.regs[rd] = mem.read_u16(addr) as u32;
                }
                Op::Lw => {
                    let addr = load!(rs1.wrapping_add(imm as u32), 4);
                    self.regs[rd] = mem.read_u32(addr);
                }
                Op::Sb => {
                    let addr = store!(rs1.wrapping_add(imm as u32), 1);
                    mem.write_u8(addr, rs2 as u8);
                }
                Op::Sh => {
                    let addr = store!(rs1.wrapping_add(imm as u32), 2);
                    mem.write_u16(addr, rs2 as u16);
                }
                Op::Sw => {
                    let addr = store!(rs1.wrapping_add(imm as u32), 4);
                    mem.write_u32(addr, rs2);
                }
                Op::Beq | Op::Bne | Op::Blt | Op::Bge | Op::Bltu | Op::Bgeu => {
                    let taken = match inst.op {
                        Op::Beq => rs1 == rs2,
                        Op::Bne => rs1 != rs2,
                        Op::Blt => (rs1 as i32) < (rs2 as i32),
                        Op::Bge => (rs1 as i32) >= (rs2 as i32),
                        Op::Bltu => rs1 < rs2,
                        _ => rs1 >= rs2,
                    };
                    if FULL {
                        if let Some(u) = uarch.as_mut() {
                            u.branch(self.pc, taken);
                        }
                    }
                    if taken {
                        target = next_pc.wrapping_add(imm as u32);
                    }
                }
                Op::J => target = next_pc.wrapping_add(imm as u32),
                Op::Jal => {
                    self.regs[crate::reg::RA.index()] = next_pc;
                    target = next_pc.wrapping_add(imm as u32);
                }
                Op::Jr => target = rs1,
                Op::Jalr => {
                    self.regs[rd] = next_pc;
                    target = rs1;
                }
                Op::Sys => match handler.sys(imm as u32, &mut self.regs, mem) {
                    Ok(SysOutcome::Continue) => {}
                    Ok(SysOutcome::Stop) => {
                        stats.halt = HaltReason::SysStop;
                        self.regs[0] = 0;
                        self.pc = next_pc;
                        break;
                    }
                    Err(SimError::UnknownSyscall { code, .. }) => {
                        return Err(SimError::UnknownSyscall { code, pc: self.pc });
                    }
                    Err(e) => return Err(e),
                },
                Op::Halt => {
                    stats.halt = HaltReason::Halted;
                    self.pc = next_pc;
                    break;
                }
            }

            self.regs[0] = 0; // keep the zero register zero
            self.pc = target;
        }

        Ok(())
    }

    /// The superblock engine: counts-only execution retired one basic
    /// block at a time against a predecoded [`BlockTable`].
    ///
    /// Per fully-retired block this applies one fused delta (instruction
    /// count, op-class mix, unique-coverage bit) and, when the runtime
    /// region gate passes, the block's statically-grouped memory-access
    /// counts — then follows a pre-resolved successor link, so the hot
    /// loop does no per-instruction PC translation, dispatch bookkeeping,
    /// or accounting. Entry points that are not block leaders and runs
    /// close enough to the instruction budget that the next block might
    /// not complete bail out to the per-instruction counts loop, which is
    /// the reference semantics — so every observable outcome (stats,
    /// registers, PC, memory, errors) is bit-identical to
    /// `exec::<false, _>`. See DESIGN.md ("Superblock engine").
    ///
    /// With `TRACES` compiled in, the table's hot-trace layer sits on
    /// top: warm-up runs count per-block heat and branch directions,
    /// then formed traces (see [`crate::trace`]) dispatch at chain heads
    /// and retire whole biased chains with one fused delta per trip. A
    /// trip that might cross the instruction budget is declined up front
    /// (the block path places the budget error exactly); a mispredicted
    /// guard retires the executed prefix at block granularity and falls
    /// off to this block-level loop — so `TRACES = true` is observably
    /// identical to `TRACES = false`. See DESIGN.md ("Trace fusion").
    fn exec_blocks<const TRACES: bool, O: Observer>(
        &mut self,
        mem: &mut Memory,
        config: &RunConfig,
        handler: &mut dyn SysHandler,
        stats: &mut RunStats,
        table: &BlockTable,
        obs: &mut O,
    ) -> Result<(), SimError> {
        let program: &'p Program = self.program;
        let text_base = program.text_base();
        let insts = program.insts();
        let n = insts.len();
        let max_instructions = config.max_instructions;
        debug_assert!(
            ((RETURN_SENTINEL.wrapping_sub(text_base) >> 2) as usize) >= n,
            "return sentinel aliases the text region"
        );
        debug_assert_eq!(
            table.block_map().block_ids().len(),
            n,
            "block table built from a different program"
        );

        // Blocks retired whole this run; expanded into per-instruction
        // `executed` bits on every exit. Kept separate from
        // `stats.executed` because the per-instruction fallback may set a
        // leader's bit and then fault mid-block — expanding leader bits
        // would over-mark.
        let mut seen = table.seen_scratch();
        let mut retires = table.retire_scratch();
        let mut tstate = table.trace_scratch();
        if TRACES {
            tstate.tick(table, text_base);
        }
        // Split the trace layer's fields so formed entries stay readable
        // while the counters mutate. All dead code when `!TRACES`.
        let crate::trace::TraceState {
            traces,
            trace_of,
            retires: trace_retires,
            exit_retires,
            exited,
            stats: tstats,
            heat,
            taken,
            not_taken,
            formed,
            ..
        } = &mut *tstate;
        // Warm-up profiling is active only until the formation pass runs.
        let train = TRACES && !*formed;
        let mut result: Result<(), SimError> = Ok(());
        // When set, the per-instruction counts loop finishes the run.
        let mut bail = false;

        'run: loop {
            // Dispatch from `self.pc`, same fused range check and cold-arm
            // order as the per-instruction loop. The hot path only comes
            // through here once per run (and on indirect-cache misses):
            // static successors are pre-resolved to block ids, so
            // block-to-block transitions skip this translation entirely.
            let offset = self.pc.wrapping_sub(text_base);
            let index = (offset >> 2) as usize;
            if offset & 3 != 0 || index >= n {
                if self.pc == RETURN_SENTINEL {
                    stats.halt = HaltReason::Returned;
                } else if !self.pc.is_multiple_of(4) {
                    result = Err(SimError::MisalignedPc { pc: self.pc });
                } else {
                    result = Err(SimError::PcOutOfRange { pc: self.pc });
                }
                break 'run;
            }
            if !table.is_leader(index) {
                // Mid-block entry (an indirect jump into a block's
                // interior): only the per-instruction loop can account
                // a partial block correctly.
                bail = true;
                break 'run;
            }
            let mut b = table.block_map().block_of(index);
            'chain: loop {
                if TRACES && *formed {
                    // Trace dispatch: one load + compare per chain head.
                    let t = trace_of[b];
                    if t != u32::MAX {
                        let tr = &traces[t as usize];
                        if stats.instret + tr.total_len > max_instructions {
                            // A complete trip might cross the budget; the
                            // block path below places the budget error at
                            // exactly the right instruction.
                            tstats.declines += 1;
                        } else {
                            tstats.hits += 1;
                            match self.exec_trace(
                                tr,
                                mem,
                                stats,
                                &mut exit_retires[t as usize],
                                &mut exited[t as usize],
                                &mut trace_retires[t as usize],
                                &mut tstats.guard_exits,
                            ) {
                                TraceExit::Block(nb) => {
                                    b = nb;
                                    continue 'chain;
                                }
                                TraceExit::Cold => continue 'run,
                            }
                        }
                    }
                }
                let entry = table.entry(b);
                let len = entry.len as u64;
                if stats.instret + len > max_instructions {
                    // The budget error must land at exactly the right
                    // instruction inside this block; hand over.
                    bail = true;
                    break 'run;
                }

                // Fused retire: the whole block's instruction count,
                // op-class mix, and coverage in one shot, before the
                // terminator runs — matching the per-instruction order
                // where accounting precedes the `sys`/`halt` dispatch.
                // The mix itself folds in at run end (`mix * retires`),
                // so a retire is two increments, not seven u64 adds.
                stats.instret += len;
                retires[b] += 1;
                seen.insert(b);
                if train {
                    heat[b] += 1;
                }
                obs.on_block(b, entry.first as usize, entry.len as usize);

                // Runtime region gate over the statically-grouped
                // accesses: classify each group's lowest and highest byte
                // against the live base-register value; fuse only when
                // every group provably stays inside one interval region.
                let mut fused = true;
                let mut regions = [Region::Other; crate::bblock::MAX_GROUPS];
                for (slot, g) in regions.iter_mut().zip(&entry.groups) {
                    let lo = self.regs[g.base as usize].wrapping_add(g.kmin);
                    match self.uniform_region(lo, lo.wrapping_add(g.span_m1)) {
                        Some(r) => *slot = r,
                        None => {
                            fused = false;
                            break;
                        }
                    }
                }
                if fused {
                    for (g, &r) in entry.groups.iter().zip(&regions) {
                        stats.mem.record_group(r, g.reads as u64, g.writes as u64);
                    }
                }

                // Block interior: predecoded micro-ops (fewer than the
                // instruction count after fusion), with pre-extracted
                // operands and per-uop grouped flags. No micro-op writes
                // `r0`, so the per-instruction `regs[0] = 0` reset is gone
                // from the hot loop entirely.
                let first = entry.first as usize;
                let internal_end = if matches!(entry.term, TermKind::Fall) {
                    entry.next as usize
                } else {
                    first + entry.len as usize - 1
                };
                for u in table.uops(entry) {
                    self.exec_uop(u, fused, mem, stats);
                }

                // Terminator + successor. Static targets are pre-resolved
                // to block ids; anything unresolved (out-of-text,
                // misaligned, the return sentinel, indirect-cache misses)
                // sets `self.pc` and goes back through the dispatcher's
                // cold path so errors come out identical to the
                // per-instruction loop.
                let last = internal_end;
                match entry.term {
                    TermKind::Fall => {
                        self.pc = text_base.wrapping_add(entry.next * 4);
                        if entry.next_block != u32::MAX {
                            b = entry.next_block as usize;
                            continue 'chain;
                        }
                        continue 'run;
                    }
                    TermKind::Branch {
                        op,
                        rs1,
                        rs2,
                        taken_block,
                        taken_pc,
                    } => {
                        let rs1 = self.regs[(rs1 & 31) as usize];
                        let rs2 = self.regs[(rs2 & 31) as usize];
                        let t = match op {
                            Op::Beq => rs1 == rs2,
                            Op::Bne => rs1 != rs2,
                            Op::Blt => (rs1 as i32) < (rs2 as i32),
                            Op::Bge => (rs1 as i32) >= (rs2 as i32),
                            Op::Bltu => rs1 < rs2,
                            _ => rs1 >= rs2,
                        };
                        if train {
                            if t {
                                taken[b] += 1;
                            } else {
                                not_taken[b] += 1;
                            }
                        }
                        if t {
                            self.pc = taken_pc;
                            if taken_block != u32::MAX {
                                b = taken_block as usize;
                                continue 'chain;
                            }
                            continue 'run;
                        }
                        self.pc = text_base.wrapping_add(entry.next * 4);
                        if entry.next_block != u32::MAX {
                            b = entry.next_block as usize;
                            continue 'chain;
                        }
                        continue 'run;
                    }
                    TermKind::Jump {
                        target_block,
                        target_pc,
                        link,
                    } => {
                        if link {
                            self.regs[crate::reg::RA.index()] =
                                text_base.wrapping_add((last as u32) * 4 + 4);
                        }
                        self.pc = target_pc;
                        if target_block != u32::MAX {
                            b = target_block as usize;
                            continue 'chain;
                        }
                        continue 'run;
                    }
                    TermKind::Indirect { rs1, rd, link } => {
                        let target = self.regs[(rs1 & 31) as usize];
                        if link {
                            self.regs[(rd & 31) as usize] =
                                text_base.wrapping_add((last as u32) * 4 + 4);
                            self.regs[0] = 0;
                        }
                        self.pc = target;
                        // 2-way MRU inline cache of translated target
                        // block ids: way 0 is checked first, a way-1 hit
                        // swaps to the front, and a translate fill evicts
                        // way 1. This covers the dominant shape — a
                        // subroutine returning alternately to two call
                        // sites — that a single entry misses on every
                        // visit.
                        let mut ways = entry.cache.get();
                        if ways[0].0 == target && ways[0].1 != 0 {
                            b = (ways[0].1 - 1) as usize;
                            continue 'chain;
                        }
                        if ways[1].0 == target && ways[1].1 != 0 {
                            ways.swap(0, 1);
                            let hit = (ways[0].1 - 1) as usize;
                            entry.cache.set(ways);
                            b = hit;
                            continue 'chain;
                        }
                        let off = target.wrapping_sub(text_base);
                        let ti = (off >> 2) as usize;
                        if off & 3 == 0 && ti < n && table.is_leader(ti) {
                            let tb = table.block_map().block_of(ti);
                            ways[1] = ways[0];
                            ways[0] = (target, tb as u32 + 1);
                            entry.cache.set(ways);
                            b = tb;
                            continue 'chain;
                        }
                        // Out of text, misaligned, the return sentinel, or
                        // a mid-block target: the dispatcher's cold path
                        // sorts them out (never cached).
                        continue 'run;
                    }
                    TermKind::Sys { code } => {
                        let sys_pc = text_base.wrapping_add((last as u32) * 4);
                        match handler.sys(code, &mut self.regs, mem) {
                            Ok(SysOutcome::Continue) => {
                                self.regs[0] = 0;
                                self.pc = sys_pc.wrapping_add(4);
                                if entry.next_block != u32::MAX {
                                    b = entry.next_block as usize;
                                    continue 'chain;
                                }
                                continue 'run;
                            }
                            Ok(SysOutcome::Stop) => {
                                stats.halt = HaltReason::SysStop;
                                self.regs[0] = 0;
                                self.pc = sys_pc.wrapping_add(4);
                                break 'run;
                            }
                            Err(SimError::UnknownSyscall { code, .. }) => {
                                self.pc = sys_pc;
                                result = Err(SimError::UnknownSyscall { code, pc: sys_pc });
                                break 'run;
                            }
                            Err(e) => {
                                self.pc = sys_pc;
                                result = Err(e);
                                break 'run;
                            }
                        }
                    }
                    TermKind::Halt => {
                        stats.halt = HaltReason::Halted;
                        self.pc = text_base.wrapping_add((last as u32) * 4 + 4);
                        break 'run;
                    }
                }
            }
        }

        // Guard-exited trace prefixes were deferred to O(1) per-exit-point
        // counters during the run; fold each touched exit point as one
        // scaled merge of its precomputed prefix mix plus coverage over
        // the prefix's distinct blocks — never a per-block retire walk.
        // `exited` keeps the fold from scanning untouched traces.
        if TRACES {
            for (t, tr) in traces.iter().enumerate() {
                if std::mem::take(&mut exited[t]) == 0 {
                    continue;
                }
                for (i, times) in exit_retires[t].iter_mut().enumerate() {
                    let times = std::mem::take(times);
                    if times == 0 {
                        continue;
                    }
                    stats.op_mix.merge_scaled(&tr.prefix_mix[i], times);
                    let hi = tr.segs[i].distinct_hi as usize;
                    for &blk in &tr.blocks[..hi] {
                        for idx in table.block_map().block_range(blk as usize) {
                            stats.executed.insert(idx);
                        }
                    }
                }
            }
        }
        // Expand fully-retired blocks into per-instruction coverage bits
        // and fold the deferred op-mix deltas — on every exit, including
        // faults, so partial runs compare equal to the per-instruction
        // loop. Zeroing each visited retire count restores the scratch's
        // all-zero invariant without an O(num_blocks) clear.
        for b in seen.iter() {
            for i in table.block_map().block_range(b) {
                stats.executed.insert(i);
            }
            let times = std::mem::take(&mut retires[b]);
            stats.op_mix.merge_scaled(&table.entry(b).mix, times);
        }
        // Fold complete trace trips the same way: one scaled mix merge
        // per trace plus member-block coverage expansion (instret was
        // already added per trip). Traces are few, so iterating them all
        // is cheaper than tracking a seen set.
        if TRACES {
            for (t, tr) in traces.iter().enumerate() {
                let times = std::mem::take(&mut trace_retires[t]);
                if times == 0 {
                    continue;
                }
                stats.op_mix.merge_scaled(&tr.mix, times);
                for &blk in &tr.blocks {
                    for i in table.block_map().block_range(blk as usize) {
                        stats.executed.insert(i);
                    }
                }
            }
        }
        drop(seen);
        drop(retires);
        drop(tstate);

        if bail {
            // Reference semantics finish the run: exact per-access
            // classification, per-instruction budget check and observer
            // hooks, from the current architectural state.
            self.block_bailouts += 1;
            return self.exec::<false, O>(mem, config, handler, stats, &mut None, obs);
        }
        result
    }

    /// One trip through a formed trace: every member's interior runs
    /// exactly as the block path would run it (region gate, micro-ops),
    /// but the micro-ops and groups stream out of the trace's own
    /// flattened arrays — a trip never touches the block table — and the
    /// per-block retire bookkeeping and terminator dispatch are replaced
    /// by the member's guard. Nothing inside a trip can fault or observe
    /// statistics (micro-ops never fault, `sys` is never trace-internal,
    /// the budget was pre-checked), so deferring the whole trip's
    /// instret/mix/coverage to one fused delta at completion is
    /// unobservable. A mispredicted guard exits with the architectural
    /// state the block path would have had at the same point; its prefix
    /// retire is itself deferred — one bump of the member's exit counter
    /// here, folded as a precomputed prefix delta at run end — so
    /// falling off a trace costs O(1), not O(prefix).
    #[allow(clippy::too_many_arguments)]
    fn exec_trace(
        &mut self,
        tr: &TraceEntry,
        mem: &mut Memory,
        stats: &mut RunStats,
        exit_retires: &mut [u64],
        exited: &mut u64,
        trace_retire: &mut u64,
        guard_exits: &mut u64,
    ) -> TraceExit {
        let mut uop_start = 0usize;
        let mut group_start = 0usize;
        for (i, seg) in tr.segs.iter().enumerate() {
            // Same runtime region gate as the block path: fuse the
            // member's grouped access counts only when every group
            // provably stays inside one interval region.
            let groups = &tr.groups[group_start..seg.group_end as usize];
            group_start = seg.group_end as usize;
            let mut fused = true;
            let mut regions = [Region::Other; crate::bblock::MAX_GROUPS];
            for (slot, g) in regions.iter_mut().zip(groups) {
                let lo = self.regs[g.base as usize].wrapping_add(g.kmin);
                match self.uniform_region(lo, lo.wrapping_add(g.span_m1)) {
                    Some(r) => *slot = r,
                    None => {
                        fused = false;
                        break;
                    }
                }
            }
            if fused {
                for (g, &r) in groups.iter().zip(&regions) {
                    stats.mem.record_group(r, g.reads as u64, g.writes as u64);
                }
            }
            for u in &tr.uops[uop_start..seg.uop_end as usize] {
                self.exec_uop(u, fused, mem, stats);
            }
            uop_start = seg.uop_end as usize;

            match seg.guard {
                Guard::Fall => {}
                Guard::Jump { link, ret_pc } => {
                    if link {
                        self.regs[crate::reg::RA.index()] = ret_pc;
                    }
                }
                Guard::Branch {
                    op,
                    rs1,
                    rs2,
                    expect,
                    exit_block,
                    exit_pc,
                } => {
                    let a = self.regs[(rs1 & 31) as usize];
                    let b = self.regs[(rs2 & 31) as usize];
                    let t = match op {
                        Op::Beq => a == b,
                        Op::Bne => a != b,
                        Op::Blt => (a as i32) < (b as i32),
                        Op::Bge => (a as i32) >= (b as i32),
                        Op::Bltu => a < b,
                        _ => a >= b,
                    };
                    if t != expect {
                        // Mispredict: fall off the trace. The prefix
                        // retire is deferred to the run-end fold, which
                        // applies this exit point's precomputed prefix
                        // mix and coverage in one merge.
                        *guard_exits += 1;
                        *exited += 1;
                        exit_retires[i] += 1;
                        stats.instret += seg.prefix_len;
                        self.pc = exit_pc;
                        return if exit_block == u32::MAX {
                            TraceExit::Cold
                        } else {
                            TraceExit::Block(exit_block as usize)
                        };
                    }
                }
            }
        }

        // Complete trip: one fused delta (mix and coverage fold at run
        // end through the per-trace retire count).
        stats.instret += tr.total_len;
        *trace_retire += 1;
        self.pc = tr.next_pc;
        TraceExit::Block(tr.next_block as usize)
    }

    /// One predecoded micro-op inside a fully-retired block.
    ///
    /// No micro-op writes `r0` (the decoder drops dead writes and lowers
    /// `r0`-destined loads to [`UOpKind::LoadDiscard`]), so there is no
    /// zero-register reset here. `fused` is true when the block's region
    /// gate passed; it suppresses per-access classification only for
    /// micro-ops whose accounting is part of the gated group delta
    /// (`u.grouped`).
    #[inline(always)]
    fn exec_uop(&mut self, u: &UOp, fused: bool, mem: &mut Memory, stats: &mut RunStats) {
        use UOpKind as K;
        let rs1 = self.regs[(u.rs1 & 31) as usize];
        let rs2 = self.regs[(u.rs2 & 31) as usize];
        let rd = (u.rd & 31) as usize;
        let imm = u.imm;
        macro_rules! classify {
            ($addr:expr, $kind:expr) => {
                if !(fused && u.grouped) {
                    stats.mem.record(self.map.region($addr), $kind);
                }
            };
        }
        match u.kind {
            K::Add => self.regs[rd] = rs1.wrapping_add(rs2),
            K::Sub => self.regs[rd] = rs1.wrapping_sub(rs2),
            K::And => self.regs[rd] = rs1 & rs2,
            K::Or => self.regs[rd] = rs1 | rs2,
            K::Xor => self.regs[rd] = rs1 ^ rs2,
            K::Nor => self.regs[rd] = !(rs1 | rs2),
            K::Sll => self.regs[rd] = rs1.wrapping_shl(rs2 & 31),
            K::Srl => self.regs[rd] = rs1.wrapping_shr(rs2 & 31),
            K::Sra => self.regs[rd] = ((rs1 as i32).wrapping_shr(rs2 & 31)) as u32,
            K::Slt => self.regs[rd] = ((rs1 as i32) < (rs2 as i32)) as u32,
            K::Sltu => self.regs[rd] = (rs1 < rs2) as u32,
            K::Mul => self.regs[rd] = rs1.wrapping_mul(rs2),
            K::Mulhu => self.regs[rd] = ((rs1 as u64 * rs2 as u64) >> 32) as u32,
            K::Divu => self.regs[rd] = rs1.checked_div(rs2).unwrap_or(u32::MAX),
            K::Remu => self.regs[rd] = if rs2 == 0 { rs1 } else { rs1 % rs2 },
            K::AddImm => self.regs[rd] = rs1.wrapping_add(imm),
            K::AndImm => self.regs[rd] = rs1 & imm,
            K::OrImm => self.regs[rd] = rs1 | imm,
            K::XorImm => self.regs[rd] = rs1 ^ imm,
            K::SllImm => self.regs[rd] = rs1.wrapping_shl(imm),
            K::SrlImm => self.regs[rd] = rs1.wrapping_shr(imm),
            K::SraImm => self.regs[rd] = ((rs1 as i32).wrapping_shr(imm)) as u32,
            K::SltImm => self.regs[rd] = ((rs1 as i32) < imm as i32) as u32,
            K::SltuImm => self.regs[rd] = (rs1 < imm) as u32,
            K::MovImm => self.regs[rd] = imm,
            K::Lb => {
                let addr = rs1.wrapping_add(imm);
                classify!(addr, AccessKind::Read);
                self.regs[rd] = mem.read_u8(addr) as i8 as i32 as u32;
            }
            K::Lbu => {
                let addr = rs1.wrapping_add(imm);
                classify!(addr, AccessKind::Read);
                self.regs[rd] = mem.read_u8(addr) as u32;
            }
            K::Lh => {
                let addr = rs1.wrapping_add(imm);
                classify!(addr, AccessKind::Read);
                self.regs[rd] = mem.read_u16(addr) as i16 as i32 as u32;
            }
            K::Lhu => {
                let addr = rs1.wrapping_add(imm);
                classify!(addr, AccessKind::Read);
                self.regs[rd] = mem.read_u16(addr) as u32;
            }
            K::Lw => {
                let addr = rs1.wrapping_add(imm);
                classify!(addr, AccessKind::Read);
                self.regs[rd] = mem.read_u32(addr);
            }
            K::Sb => {
                let addr = rs1.wrapping_add(imm);
                classify!(addr, AccessKind::Write);
                mem.write_u8(addr, rs2 as u8);
            }
            K::Sh => {
                let addr = rs1.wrapping_add(imm);
                classify!(addr, AccessKind::Write);
                mem.write_u16(addr, rs2 as u16);
            }
            K::Sw => {
                let addr = rs1.wrapping_add(imm);
                classify!(addr, AccessKind::Write);
                mem.write_u32(addr, rs2);
            }
            K::LoadDiscard => {
                // Loads have no side effects, so only the classification
                // survives; the lookup itself is dead.
                let addr = rs1.wrapping_add(imm);
                classify!(addr, AccessKind::Read);
            }
            K::AddLb => {
                let sum = rs1.wrapping_add(rs2);
                self.regs[(u.rd2 & 31) as usize] = sum;
                let addr = sum.wrapping_add(imm);
                classify!(addr, AccessKind::Read);
                self.regs[rd] = mem.read_u8(addr) as i8 as i32 as u32;
            }
            K::AddLbu => {
                let sum = rs1.wrapping_add(rs2);
                self.regs[(u.rd2 & 31) as usize] = sum;
                let addr = sum.wrapping_add(imm);
                classify!(addr, AccessKind::Read);
                self.regs[rd] = mem.read_u8(addr) as u32;
            }
            K::MovAddLbu => {
                let addr = imm.wrapping_add(rs2);
                self.regs[(u.rd2 & 31) as usize] = addr;
                classify!(addr, AccessKind::Read);
                self.regs[rd] = mem.read_u8(addr) as u32;
            }
            K::AddLh => {
                let sum = rs1.wrapping_add(rs2);
                self.regs[(u.rd2 & 31) as usize] = sum;
                let addr = sum.wrapping_add(imm);
                classify!(addr, AccessKind::Read);
                self.regs[rd] = mem.read_u16(addr) as i16 as i32 as u32;
            }
            K::AddLhu => {
                let sum = rs1.wrapping_add(rs2);
                self.regs[(u.rd2 & 31) as usize] = sum;
                let addr = sum.wrapping_add(imm);
                classify!(addr, AccessKind::Read);
                self.regs[rd] = mem.read_u16(addr) as u32;
            }
            K::AddLw => {
                let sum = rs1.wrapping_add(rs2);
                self.regs[(u.rd2 & 31) as usize] = sum;
                let addr = sum.wrapping_add(imm);
                classify!(addr, AccessKind::Read);
                self.regs[rd] = mem.read_u32(addr);
            }
            K::SrlAnd => self.regs[rd] = rs1.wrapping_shr(rs2 & 31) & imm,
            K::RsbImm => self.regs[rd] = imm.wrapping_sub(rs1),
            K::AndRsb => {
                let m = rs1 & (imm & 0xffff);
                self.regs[(u.rd2 & 31) as usize] = m;
                self.regs[rd] = (imm >> 16).wrapping_sub(m);
            }
            K::AddPair => {
                self.regs[rd] = rs1.wrapping_add(rs2);
                let c = self.regs[(imm & 31) as usize];
                let d = self.regs[((imm >> 8) & 31) as usize];
                self.regs[(u.rd2 & 31) as usize] = c.wrapping_add(d);
            }
            K::AddImmPair => {
                self.regs[rd] = rs1.wrapping_add(imm as u16 as i16 as i32 as u32);
                self.regs[(u.rd2 & 31) as usize] =
                    rs2.wrapping_add((imm >> 16) as u16 as i16 as i32 as u32);
            }
            K::LwPair => {
                let addr = rs1.wrapping_add(imm & 0xffff);
                classify!(addr, AccessKind::Read);
                self.regs[rd] = mem.read_u32(addr);
                let addr2 = rs1.wrapping_add(imm >> 16);
                classify!(addr2, AccessKind::Read);
                self.regs[(u.rd2 & 31) as usize] = mem.read_u32(addr2);
            }
            // Trace-peephole superops (see `trace::peephole`). Sources are
            // all read before any write lands, and `rd != rd2` wherever
            // both are written, so pattern-internal aliasing matches the
            // unfused sequences exactly.
            K::XorShifts => {
                let y = rs2.wrapping_shr((imm >> 5) & 31);
                self.regs[(u.rd2 & 31) as usize] = y;
                self.regs[rd] = rs1.wrapping_shl(imm & 31) ^ y;
            }
            K::AndShl => self.regs[rd] = (rs1 & imm).wrapping_shl(u.rs2 as u32),
            K::SrlImmAnd => self.regs[rd] = rs1.wrapping_shr(u.rs2 as u32) & imm,
            K::AddXor => {
                let sum = rs1.wrapping_add(rs2);
                let other = self.regs[(imm & 31) as usize];
                self.regs[(u.rd2 & 31) as usize] = sum;
                self.regs[rd] = other ^ sum;
            }
            K::MovShl => self.regs[rd] = imm.wrapping_shl(rs2 & 31),
            K::XorSll => {
                let sh = self.regs[(imm & 31) as usize] & 31;
                self.regs[rd] = (rs1 ^ rs2).wrapping_shl(sh);
            }
            K::RsbSrl => {
                let d = imm.wrapping_sub(rs1);
                self.regs[(u.rd2 & 31) as usize] = d;
                self.regs[rd] = rs2.wrapping_shr(d & 31);
            }
            K::RsbSrlAnd => {
                let d = (imm & 0xffff).wrapping_sub(rs1);
                self.regs[(u.rd2 & 31) as usize] = d;
                self.regs[rd] = rs2.wrapping_shr(d & 31) & (imm >> 16);
            }
            K::ShlOr => self.regs[rd] = rs1.wrapping_shl(imm) | rs2,
        }
    }

    /// Classifies the closed byte range `[lo, hi]` when it provably lies
    /// in a single region. Sound because the mapped regions are address
    /// intervals: a range whose endpoints both fit inside one interval is
    /// wholly inside it. The complement region ([`Region::Other`]) is not
    /// an interval, so ranges there — and ranges that wrap the address
    /// space — return `None` and fall back to per-access classification.
    #[inline(always)]
    fn uniform_region(&self, lo: u32, hi: u32) -> Option<Region> {
        if hi < lo {
            return None;
        }
        let m = &self.map;
        if lo >= m.packet_base && hi < m.packet_end {
            Some(Region::Packet)
        } else if lo >= m.data_base
            && hi < m.data_end
            // Classification priority: an address inside both intervals
            // would count as Packet per-access, so the whole range must
            // stay clear of the packet interval.
            && (hi < m.packet_base || lo >= m.packet_end)
        {
            Some(Region::ProgramData)
        } else if lo > m.stack_limit
            && hi <= m.stack_top
            && (hi < m.packet_base || lo >= m.packet_end)
            && (hi < m.data_base || lo >= m.data_end)
        {
            Some(Region::Stack)
        } else {
            None
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn note_access<O: Observer>(
        &self,
        stats: &mut RunStats,
        uarch: Option<&mut Uarch>,
        config: &RunConfig,
        addr: u32,
        size: u8,
        kind: AccessKind,
        obs: &mut O,
    ) {
        let region = self.map.region(addr);
        stats.mem.record(region, kind);
        obs.on_mem(addr, size, kind, region);
        if let Some(u) = uarch {
            u.data_access(addr);
        }
        if config.record_mem_trace {
            stats.mem_trace.push(MemEvent {
                instr_index: stats.instret - 1,
                addr,
                size,
                kind,
                region,
            });
        }
    }
}

impl Interpreter for Cpu<'_> {
    fn reset(&mut self) {
        Cpu::reset(self);
    }

    fn set_pc(&mut self, pc: u32) {
        self.pc = pc;
    }

    fn set_reg(&mut self, r: Reg, value: u32) {
        Cpu::set_reg(self, r, value);
    }

    fn state(&self) -> CpuState {
        Cpu::state(self)
    }

    fn run_into(
        &mut self,
        mem: &mut Memory,
        config: &RunConfig,
        handler: &mut dyn SysHandler,
        stats: &mut RunStats,
    ) -> Result<(), SimError> {
        Cpu::run_into(self, mem, config, handler, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::reg;

    fn map() -> MemoryMap {
        MemoryMap::default()
    }

    fn run_program(
        insts: Vec<Inst>,
        setup: impl FnOnce(&mut Cpu, &mut Memory),
    ) -> (Vec<u32>, RunStats) {
        let program = Program::new(insts, map().text_base);
        let mut mem = Memory::new();
        let mut cpu = Cpu::new(&program, map());
        setup(&mut cpu, &mut mem);
        let stats = cpu
            .run(&mut mem, &RunConfig::default())
            .expect("program runs");
        (cpu.regs.to_vec(), stats)
    }

    #[test]
    fn arithmetic_and_return() {
        let (regs, stats) = run_program(
            vec![
                Inst::with_imm(Op::Addi, reg::T0, reg::ZERO, 21),
                Inst::rtype(Op::Add, reg::T1, reg::T0, reg::T0),
                Inst::jr(reg::RA),
            ],
            |_, _| {},
        );
        assert_eq!(regs[reg::T1.index()], 42);
        assert_eq!(stats.instret, 3);
        assert_eq!(stats.halt, HaltReason::Returned);
        assert_eq!(stats.unique_instructions(), 3);
    }

    #[test]
    fn zero_register_is_immutable() {
        let (regs, _) = run_program(
            vec![
                Inst::with_imm(Op::Addi, reg::ZERO, reg::ZERO, 99),
                Inst::rtype(Op::Add, reg::T0, reg::ZERO, reg::ZERO),
                Inst::jr(reg::RA),
            ],
            |_, _| {},
        );
        assert_eq!(regs[0], 0);
        assert_eq!(regs[reg::T0.index()], 0);
    }

    #[test]
    fn loads_and_stores_classify_regions() {
        let m = map();
        let (_, stats) = run_program(
            vec![
                // load a word from packet memory, store to program data
                Inst::with_imm(Op::Lw, reg::T0, reg::A0, 0),
                Inst::store(Op::Sw, reg::T0, reg::GP, 8),
                // and one stack push
                Inst::with_imm(Op::Addi, reg::SP, reg::SP, -4),
                Inst::store(Op::Sw, reg::RA, reg::SP, 0),
                Inst::jr(reg::RA),
            ],
            |cpu, mem| {
                cpu.set_reg(reg::A0, m.packet_base);
                mem.write_u32(m.packet_base, 0x01020304);
            },
        );
        assert_eq!(stats.mem.packet_reads, 1);
        assert_eq!(stats.mem.data_writes, 1);
        assert_eq!(stats.mem.stack_writes, 1);
        assert_eq!(stats.mem.packet_total(), 1);
        assert_eq!(stats.mem.non_packet_total(), 2);
    }

    #[test]
    fn sign_extension_on_loads() {
        let m = map();
        let (regs, _) = run_program(
            vec![
                Inst::with_imm(Op::Lb, reg::T0, reg::A0, 0),
                Inst::with_imm(Op::Lbu, reg::T1, reg::A0, 0),
                Inst::with_imm(Op::Lh, reg::T2, reg::A0, 0),
                Inst::with_imm(Op::Lhu, reg::T3, reg::A0, 0),
                Inst::jr(reg::RA),
            ],
            |cpu, mem| {
                cpu.set_reg(reg::A0, m.packet_base);
                mem.write_u16(m.packet_base, 0x80f0);
            },
        );
        assert_eq!(regs[reg::T0.index()], 0xffff_fff0);
        assert_eq!(regs[reg::T1.index()], 0xf0);
        assert_eq!(regs[reg::T2.index()], 0xffff_80f0);
        assert_eq!(regs[reg::T3.index()], 0x80f0);
    }

    #[test]
    fn branch_loop_counts_instructions() {
        // for t0 in 0..5 {} : 1 init + 5*(addi+blt) + final check
        let insts = vec![
            Inst::with_imm(Op::Addi, reg::T0, reg::ZERO, 0),
            Inst::with_imm(Op::Addi, reg::T1, reg::ZERO, 5),
            Inst::with_imm(Op::Addi, reg::T0, reg::T0, 1), // loop:
            Inst::branch(Op::Blt, reg::T0, reg::T1, -8),   // back to loop
            Inst::jr(reg::RA),
        ];
        let (regs, stats) = run_program(insts, |_, _| {});
        assert_eq!(regs[reg::T0.index()], 5);
        assert_eq!(stats.instret, 2 + 5 * 2 + 1);
        // 5 static instructions executed
        assert_eq!(stats.unique_instructions(), 5);
    }

    #[test]
    fn call_and_return() {
        // main: jal f; jr ra(sentinel)  f: addi a0, a0, 1; jr ra
        let insts = vec![
            Inst::with_imm(Op::Addi, reg::S0, reg::RA, 0), // save sentinel
            Inst::jump(Op::Jal, 4),                        // call f
            Inst::jr(reg::S0),                             // return to framework
            Inst::with_imm(Op::Addi, reg::A0, reg::A0, 1), // f:
            Inst::jr(reg::RA),
        ];
        let (regs, stats) = run_program(insts, |cpu, _| cpu.set_reg(reg::A0, 1));
        assert_eq!(regs[reg::A0.index()], 2);
        assert_eq!(stats.instret, 5);
        assert_eq!(stats.halt, HaltReason::Returned);
    }

    #[test]
    fn divide_by_zero_is_defined() {
        let (regs, _) = run_program(
            vec![
                Inst::with_imm(Op::Addi, reg::T0, reg::ZERO, 7),
                Inst::rtype(Op::Divu, reg::T1, reg::T0, reg::ZERO),
                Inst::rtype(Op::Remu, reg::T2, reg::T0, reg::ZERO),
                Inst::jr(reg::RA),
            ],
            |_, _| {},
        );
        assert_eq!(regs[reg::T1.index()], u32::MAX);
        assert_eq!(regs[reg::T2.index()], 7);
    }

    #[test]
    fn halt_stops_run() {
        let (_, stats) = run_program(vec![Inst::halt()], |_, _| {});
        assert_eq!(stats.halt, HaltReason::Halted);
        assert_eq!(stats.instret, 1);
    }

    #[test]
    fn runaway_program_hits_budget() {
        let program = Program::new(vec![Inst::jump(Op::J, -4)], map().text_base);
        let mut mem = Memory::new();
        let mut cpu = Cpu::new(&program, map());
        let config = RunConfig {
            max_instructions: 1000,
            ..RunConfig::default()
        };
        assert!(matches!(
            cpu.run(&mut mem, &config),
            Err(SimError::InstructionBudgetExceeded { limit: 1000 })
        ));
    }

    #[test]
    fn stray_jump_is_caught() {
        let program = Program::new(vec![Inst::jr(reg::T0)], map().text_base);
        let mut mem = Memory::new();
        let mut cpu = Cpu::new(&program, map());
        cpu.set_reg(reg::T0, 0xdead_0000);
        assert!(matches!(
            cpu.run(&mut mem, &RunConfig::default()),
            Err(SimError::PcOutOfRange { .. })
        ));
    }

    #[test]
    fn sys_is_rejected_without_handler() {
        let program = Program::new(vec![Inst::sys(1)], map().text_base);
        let mut mem = Memory::new();
        let mut cpu = Cpu::new(&program, map());
        assert!(matches!(
            cpu.run(&mut mem, &RunConfig::default()),
            Err(SimError::UnknownSyscall { code: 1, .. })
        ));
    }

    #[test]
    fn sys_handler_can_stop_and_mutate() {
        struct Handler;
        impl SysHandler for Handler {
            fn sys(
                &mut self,
                code: u32,
                regs: &mut [u32; 32],
                _mem: &mut Memory,
            ) -> Result<SysOutcome, SimError> {
                regs[reg::A0.index()] = code * 10;
                Ok(SysOutcome::Stop)
            }
        }
        let program = Program::new(vec![Inst::sys(4), Inst::halt()], map().text_base);
        let mut mem = Memory::new();
        let mut cpu = Cpu::new(&program, map());
        let stats = cpu
            .run_with(&mut mem, &RunConfig::default(), &mut Handler)
            .unwrap();
        assert_eq!(stats.halt, HaltReason::SysStop);
        assert_eq!(cpu.reg(reg::A0), 40);
        assert_eq!(stats.instret, 1);
    }

    #[test]
    fn pc_and_mem_traces_recorded_on_request() {
        let m = map();
        let program = Program::new(
            vec![
                Inst::with_imm(Op::Lw, reg::T0, reg::A0, 0),
                Inst::store(Op::Sw, reg::T0, reg::GP, 0),
                Inst::jr(reg::RA),
            ],
            m.text_base,
        );
        let mut mem = Memory::new();
        let mut cpu = Cpu::new(&program, m);
        cpu.set_reg(reg::A0, m.packet_base);
        let config = RunConfig {
            record_pc_trace: true,
            record_mem_trace: true,
            ..RunConfig::default()
        };
        let stats = cpu.run(&mut mem, &config).unwrap();
        assert_eq!(
            stats.pc_trace,
            vec![m.text_base, m.text_base + 4, m.text_base + 8]
        );
        assert_eq!(stats.mem_trace.len(), 2);
        assert_eq!(stats.mem_trace[0].region, Region::Packet);
        assert_eq!(stats.mem_trace[0].kind, AccessKind::Read);
        assert_eq!(stats.mem_trace[1].region, Region::ProgramData);
        assert_eq!(stats.mem_trace[1].kind, AccessKind::Write);
        assert_eq!(stats.mem_trace[1].instr_index, 1);
    }

    #[test]
    fn uarch_models_attach() {
        let insts = vec![
            Inst::with_imm(Op::Addi, reg::T0, reg::ZERO, 0),
            Inst::with_imm(Op::Addi, reg::T1, reg::ZERO, 100),
            Inst::with_imm(Op::Addi, reg::T0, reg::T0, 1),
            Inst::with_imm(Op::Lw, reg::T2, reg::GP, 0),
            Inst::branch(Op::Blt, reg::T0, reg::T1, -12),
            Inst::jr(reg::RA),
        ];
        let program = Program::new(insts, map().text_base);
        let mut mem = Memory::new();
        let mut cpu = Cpu::new(&program, map());
        let config = RunConfig {
            uarch: Some(UarchConfig::default()),
            ..RunConfig::default()
        };
        let stats = cpu.run(&mut mem, &config).unwrap();
        let u = stats.uarch.expect("uarch stats present");
        assert_eq!(u.branches, 100);
        assert!(u.mispredictions < 5);
        assert_eq!(u.dcache_accesses, 100);
        // After the cold miss everything hits in the I-cache.
        assert!(u.icache_misses <= 2);
        assert_eq!(u.icache_accesses, stats.instret);
    }

    #[test]
    fn op_mix_accumulates() {
        let (_, stats) = run_program(
            vec![
                Inst::with_imm(Op::Addi, reg::T0, reg::ZERO, 3),
                Inst::with_imm(Op::Lw, reg::T1, reg::GP, 0),
                Inst::store(Op::Sw, reg::T1, reg::GP, 4),
                Inst::jr(reg::RA),
            ],
            |_, _| {},
        );
        use crate::isa::OpClass;
        assert_eq!(stats.op_mix.count(OpClass::Alu), 1);
        assert_eq!(stats.op_mix.count(OpClass::Load), 1);
        assert_eq!(stats.op_mix.count(OpClass::Store), 1);
        assert_eq!(stats.op_mix.count(OpClass::Jump), 1);
        assert_eq!(stats.op_mix.total(), stats.instret);
    }

    /// Runs `insts` under the forced counts loop and the forced block
    /// engine with identical seeding and asserts every observable — the
    /// result, all statistics, the register file, the PC, and a memory
    /// digest — is bit-identical.
    fn assert_block_matches_counts(
        insts: Vec<Inst>,
        config: &RunConfig,
        handler_factory: impl Fn() -> Box<dyn SysHandler>,
        setup: impl Fn(&mut Cpu, &mut Memory),
    ) -> (Result<(), SimError>, RunStats) {
        let program = Program::new(insts, map().text_base);
        let table = crate::bblock::BlockTable::build(&program);
        let mut outcomes = Vec::new();
        for path in [ExecPath::Counts, ExecPath::Block] {
            let mut mem = Memory::new();
            let mut cpu = Cpu::new(&program, map()).with_blocks(&table);
            setup(&mut cpu, &mut mem);
            let mut stats = RunStats::for_program(program.len());
            let mut handler = handler_factory();
            let result = cpu.run_into_path(&mut mem, config, handler.as_mut(), &mut stats, path);
            outcomes.push((result, stats, cpu.state(), mem.digest()));
        }
        let (r0, s0, st0, d0) = outcomes.remove(0);
        let (r1, s1, st1, d1) = outcomes.remove(0);
        assert_eq!(r0, r1, "run result");
        assert_eq!(s0.instret, s1.instret, "instret");
        assert_eq!(s0.op_mix, s1.op_mix, "op mix");
        assert_eq!(s0.executed, s1.executed, "executed set");
        assert_eq!(s0.mem, s1.mem, "mem counts");
        assert_eq!(s0.halt, s1.halt, "halt reason");
        assert_eq!(st0, st1, "architectural state");
        assert_eq!(d0, d1, "memory digest");
        (r0, s0)
    }

    fn no_sys() -> Box<dyn SysHandler> {
        Box::new(NoSys)
    }

    /// Runs `insts` `runs` times under the forced counts loop and the
    /// forced trace engine (eager formation: run 1 trains, run 2 onward
    /// replays through formed traces) with identical per-run seeding and
    /// asserts every observable is bit-identical on every run. Returns
    /// the last run's outcome plus the trace table's telemetry.
    fn assert_trace_matches_counts(
        insts: Vec<Inst>,
        config: &RunConfig,
        handler_factory: impl Fn() -> Box<dyn SysHandler>,
        setup: impl Fn(&mut Cpu, &mut Memory),
        runs: u64,
    ) -> (Result<(), SimError>, RunStats, crate::trace::TraceStats) {
        let program = Program::new(insts, map().text_base);
        let mut table = crate::bblock::BlockTable::build(&program);
        table.set_trace_params(crate::trace::TraceParams::eager());
        let mut last = None;
        for run in 0..runs {
            let mut outcomes = Vec::new();
            for path in [ExecPath::Counts, ExecPath::Trace] {
                let mut mem = Memory::new();
                let mut cpu = Cpu::new(&program, map()).with_blocks(&table);
                setup(&mut cpu, &mut mem);
                let mut stats = RunStats::for_program(program.len());
                let mut handler = handler_factory();
                let result =
                    cpu.run_into_path(&mut mem, config, handler.as_mut(), &mut stats, path);
                outcomes.push((result, stats, cpu.state(), mem.digest()));
            }
            let (r0, s0, st0, d0) = outcomes.remove(0);
            let (r1, s1, st1, d1) = outcomes.remove(0);
            assert_eq!(r0, r1, "run {run}: result");
            assert_eq!(s0.instret, s1.instret, "run {run}: instret");
            assert_eq!(s0.op_mix, s1.op_mix, "run {run}: op mix");
            assert_eq!(s0.executed, s1.executed, "run {run}: executed set");
            assert_eq!(s0.mem, s1.mem, "run {run}: mem counts");
            assert_eq!(s0.halt, s1.halt, "run {run}: halt reason");
            assert_eq!(st0, st1, "run {run}: architectural state");
            assert_eq!(d0, d1, "run {run}: memory digest");
            last = Some((r0, s0));
        }
        let (r, s) = last.unwrap();
        (r, s, table.trace_stats())
    }

    #[test]
    fn trace_engine_matches_counts_on_hot_loop() {
        // The canonical hot loop: fall into a self-branching body, exit
        // to an indirect return. The body's trace replays the taken
        // direction and guard-exits on the final iteration.
        let m = map();
        let (result, stats, tstats) = assert_trace_matches_counts(
            vec![
                Inst::with_imm(Op::Addi, reg::T0, reg::ZERO, 4),
                Inst::with_imm(Op::Lw, reg::T1, reg::A0, 0),
                Inst::with_imm(Op::Lw, reg::T2, reg::A0, 4),
                Inst::store(Op::Sw, reg::T1, reg::SP, -8),
                Inst::with_imm(Op::Addi, reg::T0, reg::T0, -1),
                Inst::branch(Op::Bne, reg::T0, reg::ZERO, -20),
                Inst::jr(reg::RA),
            ],
            &RunConfig::default(),
            no_sys,
            move |cpu, _| cpu.set_reg(reg::A0, m.packet_base),
            3,
        );
        result.unwrap();
        assert_eq!(stats.instret, 1 + 4 * 5 + 1);
        assert_eq!(stats.halt, HaltReason::Returned);
        assert!(tstats.formed >= 1, "no trace formed: {tstats:?}");
        assert!(tstats.hits >= 1, "no trace trip: {tstats:?}");
        assert!(tstats.guard_exits >= 1, "no guard exit: {tstats:?}");
    }

    #[test]
    fn trace_engine_self_loop_unrolls_and_exits_identically() {
        // A single-block self-loop: the trace unrolls it up to the
        // member cap, so one run takes complete trips (fused deltas) and
        // a final mispredicted trip.
        let (result, stats, tstats) = assert_trace_matches_counts(
            vec![
                Inst::with_imm(Op::Addi, reg::T0, reg::ZERO, 21),
                Inst::with_imm(Op::Addi, reg::T0, reg::T0, -1),
                Inst::branch(Op::Bne, reg::T0, reg::ZERO, -8), // -> 1
                Inst::jr(reg::RA),
            ],
            &RunConfig::default(),
            no_sys,
            |_, _| {},
            2,
        );
        result.unwrap();
        assert_eq!(stats.instret, 1 + 21 * 2 + 1);
        assert!(tstats.hits >= 1, "no complete trip: {tstats:?}");
        assert!(tstats.guard_exits >= 1, "no guard exit: {tstats:?}");
    }

    #[test]
    fn trace_engine_not_taken_biased_branch_and_static_jump() {
        // Loop shaped the other way: a rarely-taken forward exit branch
        // (guard expects not-taken) and a static backward jump — both
        // chain, and the final taken exit mispredicts out of the trace.
        let (result, stats, tstats) = assert_trace_matches_counts(
            vec![
                /* 0 */ Inst::with_imm(Op::Addi, reg::T0, reg::ZERO, 5),
                /* 1 */ Inst::branch(Op::Beq, reg::T0, reg::ZERO, 8), // -> 4
                /* 2 */ Inst::with_imm(Op::Addi, reg::T0, reg::T0, -1),
                /* 3 */ Inst::jump(Op::J, -12), // -> 1
                /* 4 */ Inst::jr(reg::RA),
            ],
            &RunConfig::default(),
            no_sys,
            |_, _| {},
            3,
        );
        result.unwrap();
        assert_eq!(stats.instret, 1 + 6 + 5 * 2 + 1);
        assert!(tstats.hits >= 1, "no complete trip: {tstats:?}");
        assert!(tstats.guard_exits >= 1, "no guard exit: {tstats:?}");
    }

    #[test]
    fn trace_engine_link_jump_writes_return_address() {
        // A `jal` inside a trace must write `ra` exactly as the block
        // path does: the trace chains callsite -> callee, the callee
        // returns through `jr ra` (cold, indirect terminators never
        // chain), and the landing pad's halt ends the run with `ra`
        // compared in the architectural state.
        let (result, _, tstats) = assert_trace_matches_counts(
            vec![
                /* 0 */ Inst::with_imm(Op::Addi, reg::T0, reg::ZERO, 1),
                /* 1 */ Inst::jump(Op::Jal, 8), // -> 4
                /* 2 */ Inst::with_imm(Op::Addi, reg::T2, reg::ZERO, 7), // landing pad
                /* 3 */ Inst::halt(),
                /* 4 */ Inst::with_imm(Op::Addi, reg::T1, reg::T1, 1),
                /* 5 */ Inst::jump(Op::J, 0), // -> 6
                /* 6 */ Inst::jr(reg::RA),
            ],
            &RunConfig::default(),
            no_sys,
            |_, _| {},
            2,
        );
        result.unwrap();
        assert!(tstats.formed >= 1, "no trace formed: {tstats:?}");
    }

    #[test]
    fn trace_engine_budget_decline_matches_counts() {
        // A budget that lands mid-loop: dispatches whose full trip might
        // cross it must decline to the block path and fail at the exact
        // same instruction as the counts loop.
        let (result, stats, tstats) = assert_trace_matches_counts(
            vec![
                Inst::with_imm(Op::Addi, reg::T0, reg::ZERO, 1000),
                Inst::with_imm(Op::Addi, reg::T0, reg::T0, -1),
                Inst::branch(Op::Bne, reg::T0, reg::ZERO, -4),
                Inst::jr(reg::RA),
            ],
            &RunConfig {
                max_instructions: 97,
                ..RunConfig::default()
            },
            no_sys,
            |_, _| {},
            3,
        );
        assert!(matches!(
            result,
            Err(SimError::InstructionBudgetExceeded { limit: 97 })
        ));
        assert_eq!(stats.instret, 97);
        assert!(tstats.declines >= 1, "no budget decline: {tstats:?}");
    }

    #[test]
    fn block_engine_matches_counts_on_loops_and_memory() {
        let m = map();
        let (result, stats) = assert_block_matches_counts(
            vec![
                // t0 = 4 loop iterations, each touching packet + stack.
                Inst::with_imm(Op::Addi, reg::T0, reg::ZERO, 4),
                // loop head (branch target): two packet loads, one stack
                // store — static groups on a0 and sp.
                Inst::with_imm(Op::Lw, reg::T1, reg::A0, 0),
                Inst::with_imm(Op::Lw, reg::T2, reg::A0, 4),
                Inst::store(Op::Sw, reg::T1, reg::SP, -8),
                Inst::with_imm(Op::Addi, reg::T0, reg::T0, -1),
                Inst::branch(Op::Bne, reg::T0, reg::ZERO, -20),
                Inst::jr(reg::RA),
            ],
            &RunConfig::default(),
            no_sys,
            move |cpu, _| cpu.set_reg(reg::A0, m.packet_base),
        );
        result.unwrap();
        assert_eq!(stats.instret, 1 + 4 * 5 + 1);
        assert_eq!(stats.mem.packet_reads, 8);
        assert_eq!(stats.mem.stack_writes, 4);
        assert_eq!(stats.halt, HaltReason::Returned);
    }

    #[test]
    fn block_engine_branch_to_self_hits_budget_identically() {
        // A single-instruction block that is its own branch target; the
        // budget error must fire at the same instruction on both paths.
        let (result, stats) = assert_block_matches_counts(
            vec![Inst::branch(Op::Beq, reg::ZERO, reg::ZERO, -4)],
            &RunConfig {
                max_instructions: 97,
                ..RunConfig::default()
            },
            no_sys,
            |_, _| {},
        );
        assert!(matches!(
            result,
            Err(SimError::InstructionBudgetExceeded { limit: 97 })
        ));
        assert_eq!(stats.instret, 97);
    }

    #[test]
    fn block_engine_handles_blocks_longer_than_the_static_mask() {
        // One straight-line block of >64 instructions with memory accesses
        // past position 64: those can never be in `static_mask` and must
        // account dynamically without overflowing the mask shift.
        let m = map();
        let mut insts = vec![Inst::with_imm(Op::Lw, reg::T1, reg::A0, 0)];
        insts.extend((0..70).map(|_| Inst::with_imm(Op::Addi, reg::T0, reg::T0, 1)));
        insts.push(Inst::with_imm(Op::Lw, reg::T2, reg::A0, 4));
        insts.push(Inst::store(Op::Sw, reg::T0, reg::SP, -4));
        insts.push(Inst::halt());
        let (result, stats) =
            assert_block_matches_counts(insts, &RunConfig::default(), no_sys, move |cpu, _| {
                cpu.set_reg(reg::A0, m.packet_base)
            });
        result.unwrap();
        assert_eq!(stats.instret, 74);
        assert_eq!(stats.mem.packet_reads, 2);
        assert_eq!(stats.mem.stack_writes, 1);
    }

    #[test]
    fn block_engine_fallthrough_into_branch_target() {
        // Instruction 3 is both the fallthrough successor of the block
        // after the branch and the branch's own target — a `Fall` block
        // boundary with no control transfer.
        let (result, stats) = assert_block_matches_counts(
            vec![
                Inst::with_imm(Op::Addi, reg::T0, reg::ZERO, 1),
                Inst::branch(Op::Beq, reg::T0, reg::ZERO, 4),
                Inst::with_imm(Op::Addi, reg::T1, reg::ZERO, 2),
                Inst::with_imm(Op::Addi, reg::T2, reg::ZERO, 3),
                Inst::jr(reg::RA),
            ],
            &RunConfig::default(),
            no_sys,
            |_, _| {},
        );
        result.unwrap();
        assert_eq!(stats.instret, 5);
    }

    #[test]
    fn block_engine_sys_and_halt_terminators() {
        // sys Continue, then sys Stop; the handler mutates a0 so the gate
        // also sees a base register change under its feet.
        struct Handler;
        impl SysHandler for Handler {
            fn sys(
                &mut self,
                code: u32,
                regs: &mut [u32; 32],
                _mem: &mut Memory,
            ) -> Result<SysOutcome, SimError> {
                match code {
                    0 => {
                        regs[reg::A0.index()] = regs[reg::A0.index()].wrapping_add(1);
                        Ok(SysOutcome::Continue)
                    }
                    6 => Ok(SysOutcome::Stop),
                    _ => Err(SimError::UnknownSyscall { code, pc: 0 }),
                }
            }
        }
        let (result, stats) = assert_block_matches_counts(
            vec![
                Inst::with_imm(Op::Addi, reg::A0, reg::ZERO, 10),
                Inst::sys(0),
                Inst::with_imm(Op::Addi, reg::A1, reg::A0, 0),
                Inst::sys(6),
                Inst::halt(),
            ],
            &RunConfig::default(),
            || Box::new(Handler),
            |_, _| {},
        );
        result.unwrap();
        assert_eq!(stats.halt, HaltReason::SysStop);
        assert_eq!(stats.instret, 4);

        let (result, stats) = assert_block_matches_counts(
            vec![
                Inst::with_imm(Op::Addi, reg::T0, reg::ZERO, 1),
                Inst::halt(),
            ],
            &RunConfig::default(),
            no_sys,
            |_, _| {},
        );
        result.unwrap();
        assert_eq!(stats.halt, HaltReason::Halted);

        let (result, _) = assert_block_matches_counts(
            vec![Inst::sys(42)],
            &RunConfig::default(),
            no_sys,
            |_, _| {},
        );
        let m = map();
        assert_eq!(
            result,
            Err(SimError::UnknownSyscall {
                code: 42,
                pc: m.text_base
            })
        );
    }

    #[test]
    fn block_engine_alternating_indirect_target() {
        // A single `jr` whose computed target alternates between two
        // leaders every iteration — the 1-entry inline cache misses every
        // time and must still resolve correctly.
        let m = map();
        let text = m.text_base;
        let (result, stats) = assert_block_matches_counts(
            vec![
                /* 0 */ Inst::with_imm(Op::Addi, reg::T0, reg::ZERO, 8),
                /* 1 */ Inst::lui(reg::S0, (text >> 16) as i32),
                /* 2 */ Inst::with_imm(Op::Addi, reg::S1, reg::S0, 36), // A = inst 9
                /* 3 */ Inst::with_imm(Op::Addi, reg::S2, reg::S0, 44), // B = inst 11
                /* 4 */ Inst::rtype(Op::Sub, reg::S3, reg::S2, reg::S1),
                /* 5 */ Inst::with_imm(Op::Andi, reg::T1, reg::T0, 1), // loop head
                /* 6 */ Inst::rtype(Op::Mul, reg::T2, reg::T1, reg::S3),
                /* 7 */ Inst::rtype(Op::Add, reg::T2, reg::S1, reg::T2),
                /* 8 */ Inst::jr(reg::T2),
                /* 9 */ Inst::with_imm(Op::Addi, reg::T3, reg::T3, 1), // A
                /* 10 */ Inst::jump(Op::J, 8), // -> 13
                /* 11 */ Inst::with_imm(Op::Addi, reg::T4, reg::T4, 1), // B
                /* 12 */ Inst::jump(Op::J, 0), // -> 13
                /* 13 */ Inst::with_imm(Op::Addi, reg::T0, reg::T0, -1),
                /* 14 */ Inst::branch(Op::Bne, reg::T0, reg::ZERO, -40), // -> 5
                /* 15 */ Inst::jr(reg::RA),
            ],
            &RunConfig::default(),
            no_sys,
            |_, _| {},
        );
        result.unwrap();
        assert_eq!(stats.halt, HaltReason::Returned);
    }

    #[test]
    fn block_engine_mid_block_indirect_entry() {
        // `jr` into the middle of a block: the engine must fall back to
        // per-instruction execution and still match exactly (including
        // the partial-block executed set).
        let m = map();
        let (result, stats) = assert_block_matches_counts(
            vec![
                /* 0 */ Inst::lui(reg::T0, (m.text_base >> 16) as i32),
                /* 1 */ Inst::with_imm(Op::Addi, reg::T0, reg::T0, 16), // inst 4
                /* 2 */ Inst::jr(reg::T0),
                /* 3 */
                Inst::with_imm(Op::Addi, reg::T1, reg::ZERO, 1), // leader, skipped
                /* 4 */
                Inst::with_imm(Op::Addi, reg::T2, reg::ZERO, 2), // mid-block target
                /* 5 */ Inst::jr(reg::RA),
            ],
            &RunConfig::default(),
            no_sys,
            |_, _| {},
        );
        result.unwrap();
        assert_eq!(stats.instret, 5);
        assert!(!stats.executed.contains(3));
        assert!(stats.executed.contains(4));
    }

    #[test]
    fn block_engine_stray_and_misaligned_targets() {
        // Branch taken to an out-of-text target.
        let (result, _) = assert_block_matches_counts(
            vec![Inst::branch(Op::Beq, reg::ZERO, reg::ZERO, 400)],
            &RunConfig::default(),
            no_sys,
            |_, _| {},
        );
        assert!(matches!(result, Err(SimError::PcOutOfRange { .. })));

        // Indirect jump to a misaligned address.
        let (result, _) = assert_block_matches_counts(
            vec![
                Inst::with_imm(Op::Addi, reg::T0, reg::ZERO, 0x1002),
                Inst::jr(reg::T0),
            ],
            &RunConfig::default(),
            no_sys,
            |_, _| {},
        );
        assert!(matches!(result, Err(SimError::MisalignedPc { pc: 0x1002 })));

        // Running off the end of the text.
        let (result, _) = assert_block_matches_counts(
            vec![Inst::with_imm(Op::Addi, reg::T0, reg::ZERO, 1)],
            &RunConfig::default(),
            no_sys,
            |_, _| {},
        );
        assert!(matches!(result, Err(SimError::PcOutOfRange { .. })));
    }

    #[test]
    fn auto_path_uses_block_engine_only_with_table() {
        // With a table attached, Auto + NullObserver must produce the
        // same stats as the explicit counts loop.
        let m = map();
        let program = Program::new(
            vec![
                Inst::with_imm(Op::Lw, reg::T0, reg::A0, 0),
                Inst::store(Op::Sw, reg::T0, reg::GP, 0),
                Inst::jr(reg::RA),
            ],
            m.text_base,
        );
        let table = crate::bblock::BlockTable::build(&program);
        let run = |blocks: bool| {
            let mut mem = Memory::new();
            let mut cpu = Cpu::new(&program, m);
            if blocks {
                cpu = cpu.with_blocks(&table);
            }
            cpu.set_reg(reg::A0, m.packet_base);
            cpu.run(&mut mem, &RunConfig::default()).unwrap()
        };
        let with_table = run(true);
        let without = run(false);
        assert_eq!(with_table.instret, without.instret);
        assert_eq!(with_table.mem, without.mem);
        assert_eq!(with_table.executed, without.executed);
    }
}
