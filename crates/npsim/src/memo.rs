//! Per-flow memoization support: a deterministic fixed-capacity cache and
//! the static write-region analysis that gates its use.
//!
//! The paper's header-processing applications are pure functions of the
//! packet bytes: two packets with identical headers produce identical
//! per-packet statistics and identical verdicts. The engine exploits that
//! by caching `key → result` per worker and skipping simulation on a hit
//! (`pb run --memo on`). Skipping is only sound if a repeat run could not
//! have observed — or left behind — different *non-packet* state, so
//! eligibility is decided statically by [`analyze_writes`]: an abstract
//! interpretation over the program's decoded instructions proving that
//! every store lands in packet memory, the stack frame, or the per-packet
//! scratch area below the application's persistent tables. Applications
//! that fail the proof (or that declare no memo key at all) simply bypass
//! the cache; nothing is trusted from annotations.
//!
//! The cache itself ([`MemoCache`]) is deliberately simple: direct-mapped
//! over a power-of-two slot array with an FNV-1a hash, so behaviour is
//! deterministic for a given packet sequence — a requirement for the
//! byte-stable metrics exports and the conformance legs that replay runs.

use std::fmt;

use crate::cpu::Program;
use crate::isa::{reg, Op};
use crate::mem::{MemoryMap, Region};

/// Default number of slots in a [`MemoCache`] (per worker).
pub const DEFAULT_MEMO_SLOTS: usize = 4096;

/// Hit/miss/eviction counters of a [`MemoCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoCounters {
    /// Lookups that found a matching key.
    pub hits: u64,
    /// Lookups that found no matching key.
    pub misses: u64,
    /// Inserts that displaced a different key from its slot.
    pub evictions: u64,
}

#[derive(Debug)]
struct Slot<V> {
    key: Vec<u8>,
    value: V,
}

/// A deterministic, fixed-capacity, direct-mapped memoization cache.
///
/// Collisions overwrite (counted as evictions); there is no probing and no
/// recency state, so a given key sequence always produces the same hit
/// pattern regardless of timing — the property that keeps memoized runs
/// reproducible and the metrics export byte-stable.
#[derive(Debug)]
pub struct MemoCache<V> {
    slots: Vec<Option<Slot<V>>>,
    mask: u64,
    counters: MemoCounters,
}

impl<V> MemoCache<V> {
    /// A cache with [`DEFAULT_MEMO_SLOTS`] slots.
    pub fn new() -> MemoCache<V> {
        MemoCache::with_slots(DEFAULT_MEMO_SLOTS)
    }

    /// A cache with at least `slots` slots (rounded up to a power of two).
    pub fn with_slots(slots: usize) -> MemoCache<V> {
        let n = slots.max(1).next_power_of_two();
        MemoCache {
            slots: (0..n).map(|_| None).collect(),
            mask: (n - 1) as u64,
            counters: MemoCounters::default(),
        }
    }

    /// Looks `key` up, counting a hit or a miss.
    pub fn lookup(&mut self, key: &[u8]) -> Option<&V> {
        let index = (fnv1a(key) & self.mask) as usize;
        let hit = matches!(&self.slots[index], Some(s) if s.key == key);
        if hit {
            self.counters.hits += 1;
            self.slots[index].as_ref().map(|s| &s.value)
        } else {
            self.counters.misses += 1;
            None
        }
    }

    /// Installs `value` under `key`, displacing any different key that
    /// hashed to the same slot (counted as an eviction).
    pub fn insert(&mut self, key: &[u8], value: V) {
        let index = (fnv1a(key) & self.mask) as usize;
        match &mut self.slots[index] {
            Some(slot) => {
                if slot.key != key {
                    self.counters.evictions += 1;
                    slot.key.clear();
                    slot.key.extend_from_slice(key);
                }
                slot.value = value;
            }
            empty => {
                *empty = Some(Slot {
                    key: key.to_vec(),
                    value,
                });
            }
        }
    }

    /// The cache's hit/miss/eviction counters.
    pub fn counters(&self) -> MemoCounters {
        self.counters
    }

    /// The number of occupied slots.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Whether no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|s| s.is_none())
    }

    /// Mutable access to every cached value, in slot order. Exists so
    /// fault-injection tests can corrupt entries and prove that the
    /// check mode detects the corruption.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.slots.iter_mut().flatten().map(|s| &mut s.value)
    }
}

impl<V> Default for MemoCache<V> {
    fn default() -> MemoCache<V> {
        MemoCache::new()
    }
}

/// FNV-1a over the key bytes — cheap, deterministic, and dependency-free.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Verdict of the static write-region analysis: whether every store the
/// program can execute stays within per-packet state.
#[derive(Debug, Clone)]
pub struct WriteAnalysis {
    /// `true` when no store can reach persistent non-packet memory.
    pub memoizable: bool,
    /// Human-readable descriptions of the offending stores (empty when
    /// `memoizable`).
    pub violations: Vec<String>,
    /// Every distinct `sys` call number the program contains, in program
    /// order. Callers veto memoization for side-effectful calls (e.g. the
    /// framework's write-to-trace, which consumes a clock timestamp).
    pub sys_codes: Vec<u32>,
}

impl fmt::Display for WriteAnalysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.memoizable {
            write!(f, "memoizable (all stores packet-scoped)")
        } else {
            write!(f, "not memoizable: {}", self.violations.join("; "))
        }
    }
}

/// What the analysis knows about a register's value at a program point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AbsVal {
    /// Anything — including loaded values and call return values.
    Unknown,
    /// The packet-buffer pointer handed to the program in `a0`, plus any
    /// constant offset.
    PacketPtr,
    /// The stack pointer seeded by the framework, plus any constant offset.
    StackPtr,
    /// A compile-time constant (absolute addresses built with `lui`/`la`).
    Const(u32),
}

type RegState = [AbsVal; 32];

fn join_val(a: AbsVal, b: AbsVal) -> AbsVal {
    if a == b {
        a
    } else {
        AbsVal::Unknown
    }
}

fn join_state(into: &mut RegState, other: &RegState) -> bool {
    let mut changed = false;
    for (a, b) in into.iter_mut().zip(other.iter()) {
        let joined = join_val(*a, *b);
        if joined != *a {
            *a = joined;
            changed = true;
        }
    }
    changed
}

fn set(state: &mut RegState, rd: usize, value: AbsVal) {
    if rd != reg::ZERO.index() {
        state[rd] = value;
    }
}

/// Applies one non-control instruction to the abstract register state.
fn transfer(inst: &crate::isa::Inst, state: &mut RegState) {
    use AbsVal::*;
    use Op::*;
    let rd = inst.rd.index();
    let a = state[inst.rs1.index()];
    let b = state[inst.rs2.index()];
    let imm = inst.imm;
    match inst.op {
        Lui => set(state, rd, Const((imm as u32) << 16)),
        Addi => set(
            state,
            rd,
            match a {
                Const(c) => Const(c.wrapping_add(imm as u32)),
                PacketPtr => PacketPtr,
                StackPtr => StackPtr,
                Unknown => Unknown,
            },
        ),
        Add => set(
            state,
            rd,
            match (a, b) {
                (Const(x), Const(y)) => Const(x.wrapping_add(y)),
                (PacketPtr, Const(_)) | (Const(_), PacketPtr) => PacketPtr,
                (StackPtr, Const(_)) | (Const(_), StackPtr) => StackPtr,
                _ => Unknown,
            },
        ),
        Sub => set(
            state,
            rd,
            match (a, b) {
                (Const(x), Const(y)) => Const(x.wrapping_sub(y)),
                (PacketPtr, Const(_)) => PacketPtr,
                (StackPtr, Const(_)) => StackPtr,
                _ => Unknown,
            },
        ),
        Andi => set(
            state,
            rd,
            match a {
                Const(c) => Const(c & imm as u32),
                _ => Unknown,
            },
        ),
        Ori => set(
            state,
            rd,
            match a {
                Const(c) => Const(c | imm as u32),
                _ => Unknown,
            },
        ),
        Xori => set(
            state,
            rd,
            match a {
                Const(c) => Const(c ^ imm as u32),
                _ => Unknown,
            },
        ),
        Slli => set(
            state,
            rd,
            match a {
                Const(c) => Const(c << (imm as u32 & 31)),
                _ => Unknown,
            },
        ),
        Srli => set(
            state,
            rd,
            match a {
                Const(c) => Const(c >> (imm as u32 & 31)),
                _ => Unknown,
            },
        ),
        Srai => set(
            state,
            rd,
            match a {
                Const(c) => Const(((c as i32) >> (imm as u32 & 31)) as u32),
                _ => Unknown,
            },
        ),
        And | Or | Xor | Nor | Sll | Srl | Sra | Slt | Sltu | Slti | Sltiu | Mul | Mulhu | Divu
        | Remu => set(state, rd, Unknown),
        Lb | Lbu | Lh | Lhu | Lw => set(state, rd, Unknown),
        // Stores, branches, jumps and sys don't write registers here; jal /
        // jalr link registers are handled by the caller's CFG walk.
        _ => {}
    }
}

/// Statically proves (or refutes) that every store in `program` targets
/// per-packet state: the packet buffer, the stack, or program-data scratch
/// below `scratch_limit` (the boundary above which the application keeps
/// persistent tables built at init time).
///
/// The proof is a forward abstract interpretation over the decoded
/// instructions, tracking for each register whether it derives from the
/// packet pointer (`a0`), the stack pointer, or a compile-time constant.
/// Control-flow recovery assumes the standard call/return idiom (`jal`
/// targets are entered with the caller's state; `jr`/`jalr` transfer to
/// the instruction after some `jal`): a `jr` through anything other than
/// `ra` conservatively forgets all register knowledge at every block
/// entry, which in practice vetoes the program. Any store whose base
/// cannot be proven packet-scoped is reported as a violation.
pub fn analyze_writes(program: &Program, map: &MemoryMap, scratch_limit: u32) -> WriteAnalysis {
    use AbsVal::*;
    let insts = program.insts();
    let n = insts.len();
    let mut sys_codes: Vec<u32> = Vec::new();
    for inst in insts {
        if inst.op == Op::Sys {
            let code = inst.imm as u32;
            if !sys_codes.contains(&code) {
                sys_codes.push(code);
            }
        }
    }
    if n == 0 {
        return WriteAnalysis {
            memoizable: true,
            violations: Vec::new(),
            sys_codes,
        };
    }

    // Block leaders: entry, control-transfer targets, and fall-throughs.
    let target_of = |i: usize| -> Option<usize> {
        let t = i as i64 + 1 + i64::from(insts[i].imm) / 4;
        (0..n as i64).contains(&t).then_some(t as usize)
    };
    let mut leader = vec![false; n];
    leader[0] = true;
    let mut return_sites: Vec<usize> = Vec::new();
    for (i, inst) in insts.iter().enumerate() {
        if inst.op.ends_block() && i + 1 < n {
            leader[i + 1] = true;
        }
        match inst.op {
            Op::Beq | Op::Bne | Op::Blt | Op::Bge | Op::Bltu | Op::Bgeu | Op::J | Op::Jal => {
                if let Some(t) = target_of(i) {
                    leader[t] = true;
                }
            }
            _ => {}
        }
        if matches!(inst.op, Op::Jal | Op::Jalr) && i + 1 < n {
            return_sites.push(i + 1);
        }
    }
    let leaders: Vec<usize> = (0..n).filter(|&i| leader[i]).collect();
    let block_end = |start: usize| -> usize {
        // One past the last instruction of the block starting at `start`.
        let mut i = start;
        loop {
            if insts[i].op.ends_block() || i + 1 >= n || leader[i + 1] {
                return i + 1;
            }
            i += 1;
        }
    };

    let mut entry: Vec<Option<RegState>> = vec![None; n]; // indexed by leader
    let mut initial = [Unknown; 32];
    initial[reg::ZERO.index()] = Const(0);
    initial[reg::A0.index()] = PacketPtr;
    initial[reg::SP.index()] = StackPtr;
    initial[reg::GP.index()] = Const(map.data_base);
    entry[0] = Some(initial);

    let mut worklist: Vec<usize> = vec![0];
    let propagate = |entry: &mut Vec<Option<RegState>>,
                     worklist: &mut Vec<usize>,
                     to: usize,
                     state: &RegState| {
        match &mut entry[to] {
            Some(existing) => {
                if join_state(existing, state) {
                    worklist.push(to);
                }
            }
            slot => {
                *slot = Some(*state);
                worklist.push(to);
            }
        }
    };

    while let Some(start) = worklist.pop() {
        let Some(mut state) = entry[start] else {
            continue;
        };
        let end = block_end(start);
        for (i, inst) in insts.iter().enumerate().take(end).skip(start) {
            match inst.op {
                Op::Beq | Op::Bne | Op::Blt | Op::Bge | Op::Bltu | Op::Bgeu => {
                    if let Some(t) = target_of(i) {
                        propagate(&mut entry, &mut worklist, t, &state);
                    }
                    if i + 1 < n {
                        propagate(&mut entry, &mut worklist, i + 1, &state);
                    }
                }
                Op::J => {
                    if let Some(t) = target_of(i) {
                        propagate(&mut entry, &mut worklist, t, &state);
                    }
                }
                Op::Jal => {
                    // Enter the callee with the caller's state; the matching
                    // return flows back through the jr broadcast below.
                    state[reg::RA.index()] = Unknown;
                    if let Some(t) = target_of(i) {
                        propagate(&mut entry, &mut worklist, t, &state);
                    }
                }
                Op::Jr | Op::Jalr => {
                    if inst.op == Op::Jalr {
                        set(&mut state, inst.rd.index(), Unknown);
                    }
                    let standard_return = inst.op == Op::Jr && inst.rs1 == reg::RA;
                    if standard_return {
                        for &site in &return_sites {
                            propagate(&mut entry, &mut worklist, site, &state);
                        }
                    } else {
                        // Computed jump: forget everything, everywhere.
                        let top = [Unknown; 32];
                        for &l in &leaders {
                            propagate(&mut entry, &mut worklist, l, &top);
                        }
                    }
                }
                Op::Sys => {
                    if i + 1 < n {
                        propagate(&mut entry, &mut worklist, i + 1, &state);
                    }
                }
                Op::Halt => {}
                _ => transfer(inst, &mut state),
            }
        }
    }

    // With entry states at fixpoint, re-walk each reachable block and
    // classify every store's base address.
    let mut violations = Vec::new();
    for &start in &leaders {
        let Some(mut state) = entry[start] else {
            continue;
        };
        let end = block_end(start);
        for (i, inst) in insts.iter().enumerate().take(end).skip(start) {
            if matches!(inst.op, Op::Sb | Op::Sh | Op::Sw) {
                let base = state[inst.rs1.index()];
                let ok = match base {
                    PacketPtr | StackPtr => true,
                    Const(addr) => {
                        let addr = addr.wrapping_add(inst.imm as u32);
                        match map.region(addr) {
                            Region::Packet | Region::Stack => true,
                            Region::ProgramData => addr < scratch_limit,
                            _ => false,
                        }
                    }
                    Unknown => false,
                };
                if !ok {
                    violations.push(format!(
                        "store `{}` at {:#010x} targets {} memory",
                        inst,
                        program.pc_of(i),
                        match base {
                            Const(_) => "persistent non-packet",
                            _ => "statically unresolvable",
                        }
                    ));
                }
            }
            if !inst.op.ends_block() {
                transfer(inst, &mut state);
            }
        }
    }

    WriteAnalysis {
        memoizable: violations.is_empty(),
        violations,
        sys_codes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Inst, Reg};

    fn map() -> MemoryMap {
        MemoryMap::default()
    }

    #[test]
    fn cache_hits_misses_and_evictions_are_counted() {
        let mut cache: MemoCache<u32> = MemoCache::with_slots(2);
        assert!(cache.is_empty());
        assert_eq!(cache.lookup(b"alpha"), None);
        cache.insert(b"alpha", 1);
        assert_eq!(cache.lookup(b"alpha"), Some(&1));
        assert_eq!(cache.lookup(b"beta"), None);
        cache.insert(b"beta", 2);
        assert_eq!(cache.len(), cache.slots.iter().flatten().count());
        let c = cache.counters();
        assert_eq!((c.hits, c.misses), (1, 2));
        // Force an eviction: with 2 slots, some pair of distinct keys must
        // collide eventually.
        let mut evicted = false;
        for i in 0..16u8 {
            cache.insert(&[i], u32::from(i));
            if cache.counters().evictions > 0 {
                evicted = true;
                break;
            }
        }
        assert!(evicted, "16 keys into 2 slots must evict");
    }

    #[test]
    fn cache_is_deterministic() {
        let run = || {
            let mut cache: MemoCache<u64> = MemoCache::with_slots(8);
            for i in 0..100u64 {
                let key = (i % 13).to_le_bytes();
                if cache.lookup(&key).is_none() {
                    cache.insert(&key, i);
                }
            }
            cache.counters()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn packet_and_stack_stores_are_memoizable() {
        let m = map();
        // sb t0, 8(a0); sw ra, 0(sp); jr ra
        let program = Program::new(
            vec![
                Inst::store(Op::Sb, reg::T0, reg::A0, 8),
                Inst::store(Op::Sw, reg::RA, reg::SP, 0),
                Inst::jr(reg::RA),
            ],
            m.text_base,
        );
        let analysis = analyze_writes(&program, &m, m.data_base);
        assert!(analysis.memoizable, "{analysis}");
    }

    #[test]
    fn derived_packet_pointers_stay_packet() {
        let m = map();
        // t0 = a0 + 16; t0 = t0 + 4 (via addi); sb t1, 0(t0)
        let program = Program::new(
            vec![
                Inst::with_imm(Op::Addi, reg::T0, reg::A0, 16),
                Inst::with_imm(Op::Addi, reg::T0, reg::T0, 4),
                Inst::store(Op::Sb, reg::T1, reg::T0, 0),
                Inst::jr(reg::RA),
            ],
            m.text_base,
        );
        assert!(analyze_writes(&program, &m, m.data_base).memoizable);
    }

    #[test]
    fn scratch_below_limit_is_allowed_above_is_not() {
        let m = map();
        let scratch = m.data_base + 0x100;
        // la t0, data_base+0x10 ; sw t1, 0(t0)   (scratch: ok)
        // la t2, data_base+0x200; sw t1, 0(t2)   (persistent: violation)
        let lo = m.data_base + 0x10;
        let hi = m.data_base + 0x200;
        let build = |addr: u32, dst: Reg| {
            [
                Inst::lui(dst, (addr >> 16) as i32),
                Inst::with_imm(Op::Addi, dst, dst, (addr & 0xffff) as i32),
            ]
        };
        let mut insts: Vec<Inst> = Vec::new();
        insts.extend(build(lo, reg::T0));
        insts.push(Inst::store(Op::Sw, reg::T1, reg::T0, 0));
        insts.push(Inst::jr(reg::RA));
        let ok = Program::new(insts.clone(), m.text_base);
        assert!(analyze_writes(&ok, &m, scratch).memoizable);

        let mut insts2: Vec<Inst> = Vec::new();
        insts2.extend(build(hi, reg::T2));
        insts2.push(Inst::store(Op::Sw, reg::T1, reg::T2, 0));
        insts2.push(Inst::jr(reg::RA));
        let bad = Program::new(insts2, m.text_base);
        let analysis = analyze_writes(&bad, &m, scratch);
        assert!(!analysis.memoizable);
        assert!(analysis.violations[0].contains("persistent"));
    }

    #[test]
    fn loaded_pointers_are_vetoed() {
        let m = map();
        // lw t0, 0(gp); sw t1, 0(t0) — pointer chased from memory.
        let program = Program::new(
            vec![
                Inst::with_imm(Op::Lw, reg::T0, reg::GP, 0),
                Inst::store(Op::Sw, reg::T1, reg::T0, 0),
                Inst::jr(reg::RA),
            ],
            m.text_base,
        );
        let analysis = analyze_writes(&program, &m, m.data_base);
        assert!(!analysis.memoizable);
        assert!(analysis.violations[0].contains("unresolvable"));
    }

    #[test]
    fn call_and_return_preserve_packet_base() {
        let m = map();
        // main: jal helper; sb t0, 4(a0); jr ra
        // helper: addi t3, zero, 7; jr ra
        let insts = vec![
            Inst::jump(Op::Jal, 8), // to index 3
            Inst::store(Op::Sb, reg::T0, reg::A0, 4),
            Inst::jr(reg::RA),
            Inst::with_imm(Op::Addi, reg::T3, reg::ZERO, 7),
            Inst::jr(reg::RA),
        ];
        let program = Program::new(insts, m.text_base);
        assert!(analyze_writes(&program, &m, m.data_base).memoizable);
    }

    #[test]
    fn computed_jumps_forget_everything() {
        let m = map();
        // jr t0 makes every block entry unknown, so the a0 store is vetoed.
        let insts = vec![
            Inst::jr(reg::T0),
            Inst::store(Op::Sb, reg::T1, reg::A0, 0),
            Inst::jr(reg::RA),
        ];
        let program = Program::new(insts, m.text_base);
        assert!(!analyze_writes(&program, &m, m.data_base).memoizable);
    }

    #[test]
    fn sys_codes_are_collected() {
        let m = map();
        let program = Program::new(
            vec![Inst::sys(1), Inst::sys(3), Inst::sys(1), Inst::jr(reg::RA)],
            m.text_base,
        );
        let analysis = analyze_writes(&program, &m, m.data_base);
        assert_eq!(analysis.sys_codes, vec![1, 3]);
        assert!(analysis.memoizable);
    }
}
