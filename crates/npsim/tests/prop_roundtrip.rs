//! Property tests for the NP32 encoder/decoder, memory, and bit-set
//! utilities.

use proptest::prelude::*;

use npsim::encode::{decode, encode};
use npsim::isa::{Inst, Op, Reg};
use npsim::util::BitSet;
use npsim::Memory;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

/// A strategy over instructions whose immediates are valid for their
/// encoding fields.
fn arb_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        // R-type
        (
            prop_oneof![
                Just(Op::Add),
                Just(Op::Sub),
                Just(Op::And),
                Just(Op::Or),
                Just(Op::Xor),
                Just(Op::Nor),
                Just(Op::Sll),
                Just(Op::Srl),
                Just(Op::Sra),
                Just(Op::Slt),
                Just(Op::Sltu),
                Just(Op::Mul),
                Just(Op::Mulhu),
                Just(Op::Divu),
                Just(Op::Remu),
            ],
            arb_reg(),
            arb_reg(),
            arb_reg()
        )
            .prop_map(|(op, rd, rs1, rs2)| Inst::rtype(op, rd, rs1, rs2)),
        // I-type signed
        (
            prop_oneof![Just(Op::Addi), Just(Op::Slti), Just(Op::Sltiu)],
            arb_reg(),
            arb_reg(),
            -(1i32 << 15)..(1i32 << 15)
        )
            .prop_map(|(op, rd, rs1, imm)| Inst::with_imm(op, rd, rs1, imm)),
        // I-type unsigned
        (
            prop_oneof![Just(Op::Andi), Just(Op::Ori), Just(Op::Xori)],
            arb_reg(),
            arb_reg(),
            0i32..=0xffff
        )
            .prop_map(|(op, rd, rs1, imm)| Inst::with_imm(op, rd, rs1, imm)),
        // shifts
        (
            prop_oneof![Just(Op::Slli), Just(Op::Srli), Just(Op::Srai)],
            arb_reg(),
            arb_reg(),
            0i32..32
        )
            .prop_map(|(op, rd, rs1, imm)| Inst::with_imm(op, rd, rs1, imm)),
        // lui
        (arb_reg(), 0i32..=0xffff).prop_map(|(rd, imm)| Inst::lui(rd, imm)),
        // loads
        (
            prop_oneof![Just(Op::Lb), Just(Op::Lbu), Just(Op::Lh), Just(Op::Lhu), Just(Op::Lw)],
            arb_reg(),
            arb_reg(),
            -(1i32 << 15)..(1i32 << 15)
        )
            .prop_map(|(op, rd, rs1, imm)| Inst::with_imm(op, rd, rs1, imm)),
        // stores
        (
            prop_oneof![Just(Op::Sb), Just(Op::Sh), Just(Op::Sw)],
            arb_reg(),
            arb_reg(),
            -(1i32 << 15)..(1i32 << 15)
        )
            .prop_map(|(op, rs2, rs1, imm)| Inst::store(op, rs2, rs1, imm)),
        // branches (word-aligned offsets)
        (
            prop_oneof![
                Just(Op::Beq),
                Just(Op::Bne),
                Just(Op::Blt),
                Just(Op::Bge),
                Just(Op::Bltu),
                Just(Op::Bgeu)
            ],
            arb_reg(),
            arb_reg(),
            -(1i32 << 15)..(1i32 << 15)
        )
            .prop_map(|(op, rs1, rs2, words)| Inst::branch(op, rs1, rs2, words * 4)),
        // jumps
        (
            prop_oneof![Just(Op::J), Just(Op::Jal)],
            -(1i32 << 25)..(1i32 << 25)
        )
            .prop_map(|(op, words)| Inst::jump(op, words * 4)),
        arb_reg().prop_map(Inst::jr),
        (0u32..=0xffff).prop_map(Inst::sys),
        Just(Inst::halt()),
    ]
}

proptest! {
    #[test]
    fn encode_decode_round_trips(inst in arb_inst()) {
        let word = encode(&inst).expect("valid instruction encodes");
        let back = decode(word).expect("encoded word decodes");
        prop_assert_eq!(back, inst);
    }

    #[test]
    fn decode_never_panics(word: u32) {
        let _ = decode(word);
    }

    #[test]
    fn decoded_words_reencode_identically(word: u32) {
        if let Ok(inst) = decode(word) {
            // Re-encoding may canonicalize ignored bits, but decoding the
            // re-encoded word must be stable.
            let word2 = encode(&inst).expect("decoded inst re-encodes");
            prop_assert_eq!(decode(word2).unwrap(), inst);
        }
    }

    #[test]
    fn memory_word_round_trip(addr: u32, value: u32) {
        let mut mem = Memory::new();
        mem.write_u32(addr, value);
        prop_assert_eq!(mem.read_u32(addr), value);
        // Byte composition agrees with little-endian order.
        let bytes = value.to_le_bytes();
        for (i, &b) in bytes.iter().enumerate() {
            prop_assert_eq!(mem.read_u8(addr.wrapping_add(i as u32)), b);
        }
    }

    #[test]
    fn memory_bulk_round_trip(addr: u32, data in proptest::collection::vec(any::<u8>(), 0..300)) {
        let mut mem = Memory::new();
        mem.write_bytes(addr, &data);
        prop_assert_eq!(mem.read_bytes(addr, data.len()), data);
    }

    #[test]
    fn bitset_agrees_with_hashset_model(
        ops in proptest::collection::vec((0usize..200, any::<bool>()), 0..100)
    ) {
        let mut set = BitSet::new(200);
        let mut model = std::collections::HashSet::new();
        for (index, _insert) in ops {
            set.insert(index);
            model.insert(index);
        }
        prop_assert_eq!(set.count(), model.len());
        for i in 0..200 {
            prop_assert_eq!(set.contains(i), model.contains(&i), "bit {}", i);
        }
        let listed: Vec<usize> = set.iter().collect();
        let mut expected: Vec<usize> = model.into_iter().collect();
        expected.sort_unstable();
        prop_assert_eq!(listed, expected);
    }
}
