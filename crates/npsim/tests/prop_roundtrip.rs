//! Randomized (seeded, deterministic) tests for the NP32 encoder/decoder,
//! memory, and bit-set utilities.

use nprng::rngs::StdRng;
use nprng::{Rng, SeedableRng};

use npsim::encode::{decode, encode};
use npsim::isa::{Inst, Op, Reg};
use npsim::util::BitSet;
use npsim::Memory;

fn arb_reg(rng: &mut StdRng) -> Reg {
    Reg::new(rng.gen_range(0u8..32))
}

fn imm16s(rng: &mut StdRng) -> i32 {
    rng.gen_range(-(1i32 << 15)..(1i32 << 15))
}

/// Draws an instruction whose immediates are valid for its encoding
/// fields — the same distribution the old proptest strategy produced.
fn arb_inst(rng: &mut StdRng) -> Inst {
    const RTYPE: [Op; 15] = [
        Op::Add,
        Op::Sub,
        Op::And,
        Op::Or,
        Op::Xor,
        Op::Nor,
        Op::Sll,
        Op::Srl,
        Op::Sra,
        Op::Slt,
        Op::Sltu,
        Op::Mul,
        Op::Mulhu,
        Op::Divu,
        Op::Remu,
    ];
    const ITYPE_S: [Op; 3] = [Op::Addi, Op::Slti, Op::Sltiu];
    const ITYPE_U: [Op; 3] = [Op::Andi, Op::Ori, Op::Xori];
    const SHIFTS: [Op; 3] = [Op::Slli, Op::Srli, Op::Srai];
    const LOADS: [Op; 5] = [Op::Lb, Op::Lbu, Op::Lh, Op::Lhu, Op::Lw];
    const STORES: [Op; 3] = [Op::Sb, Op::Sh, Op::Sw];
    const BRANCHES: [Op; 6] = [Op::Beq, Op::Bne, Op::Blt, Op::Bge, Op::Bltu, Op::Bgeu];

    match rng.gen_range(0usize..11) {
        0 => {
            let op = RTYPE[rng.gen_range(0..RTYPE.len())];
            Inst::rtype(op, arb_reg(rng), arb_reg(rng), arb_reg(rng))
        }
        1 => {
            let op = ITYPE_S[rng.gen_range(0..ITYPE_S.len())];
            Inst::with_imm(op, arb_reg(rng), arb_reg(rng), imm16s(rng))
        }
        2 => {
            let op = ITYPE_U[rng.gen_range(0..ITYPE_U.len())];
            Inst::with_imm(
                op,
                arb_reg(rng),
                arb_reg(rng),
                rng.gen_range(0i32..0x1_0000),
            )
        }
        3 => {
            let op = SHIFTS[rng.gen_range(0..SHIFTS.len())];
            Inst::with_imm(op, arb_reg(rng), arb_reg(rng), rng.gen_range(0i32..32))
        }
        4 => Inst::lui(arb_reg(rng), rng.gen_range(0i32..0x1_0000)),
        5 => {
            let op = LOADS[rng.gen_range(0..LOADS.len())];
            Inst::with_imm(op, arb_reg(rng), arb_reg(rng), imm16s(rng))
        }
        6 => {
            let op = STORES[rng.gen_range(0..STORES.len())];
            Inst::store(op, arb_reg(rng), arb_reg(rng), imm16s(rng))
        }
        7 => {
            let op = BRANCHES[rng.gen_range(0..BRANCHES.len())];
            Inst::branch(op, arb_reg(rng), arb_reg(rng), imm16s(rng) * 4)
        }
        8 => {
            let op = if rng.gen::<bool>() { Op::J } else { Op::Jal };
            Inst::jump(op, rng.gen_range(-(1i32 << 25)..(1i32 << 25)) * 4)
        }
        9 => Inst::jr(arb_reg(rng)),
        _ => {
            if rng.gen::<bool>() {
                Inst::sys(rng.gen_range(0u32..0x1_0000))
            } else {
                Inst::halt()
            }
        }
    }
}

#[test]
fn encode_decode_round_trips() {
    let mut rng = StdRng::seed_from_u64(0x4e50_0001);
    for _ in 0..4000 {
        let inst = arb_inst(&mut rng);
        let word = encode(&inst).expect("valid instruction encodes");
        let back = decode(word).expect("encoded word decodes");
        assert_eq!(back, inst);
    }
}

#[test]
fn every_opcode_round_trips_via_conformance_generator() {
    // The conformance fuzzer's instruction generator is the shared source
    // of "arbitrary but valid" instructions: whatever it can produce for
    // an opcode must survive encode -> decode -> encode bit-identically.
    // Iterating the full opcode list makes the coverage explicit instead
    // of probabilistic.
    let mut rng = StdRng::seed_from_u64(0x4e50_0007);
    let len = 64;
    for round in 0..200 {
        for op in Op::ALL.iter().chain([Op::Sys, Op::Halt].iter()) {
            let index = round % len;
            let inst = npconform::arb_inst(&mut rng, *op, index, len);
            assert_eq!(inst.op, *op, "generator changed the opcode");
            let word = encode(&inst).expect("generated instruction encodes");
            let back = decode(word).expect("encoded word decodes");
            assert_eq!(back, inst, "decode(encode({inst})) changed the instruction");
            let word2 = encode(&back).expect("decoded instruction re-encodes");
            assert_eq!(word, word2, "re-encoding {inst} produced a different word");
        }
    }
}

#[test]
fn decode_never_panics() {
    let mut rng = StdRng::seed_from_u64(0x4e50_0002);
    for _ in 0..20_000 {
        let _ = decode(rng.gen::<u32>());
    }
    // Plus the edge words a uniform draw is unlikely to hit.
    for word in [0, 1, u32::MAX, u32::MAX - 1, 0x8000_0000, 0x7fff_ffff] {
        let _ = decode(word);
    }
}

#[test]
fn decoded_words_reencode_identically() {
    let mut rng = StdRng::seed_from_u64(0x4e50_0003);
    for _ in 0..20_000 {
        let word = rng.gen::<u32>();
        if let Ok(inst) = decode(word) {
            // Re-encoding may canonicalize ignored bits, but decoding the
            // re-encoded word must be stable.
            let word2 = encode(&inst).expect("decoded inst re-encodes");
            assert_eq!(decode(word2).unwrap(), inst);
        }
    }
}

#[test]
fn memory_word_round_trip() {
    let mut rng = StdRng::seed_from_u64(0x4e50_0004);
    for i in 0..2000 {
        // Mix uniform addresses with page-boundary straddlers.
        let addr = if i % 4 == 0 {
            (rng.gen::<u32>() & !0xfff) | rng.gen_range(0xffd_u32..0x1003)
        } else {
            rng.gen::<u32>()
        };
        let value = rng.gen::<u32>();
        let mut mem = Memory::new();
        mem.write_u32(addr, value);
        assert_eq!(mem.read_u32(addr), value, "addr {addr:#010x}");
        // Byte composition agrees with little-endian order.
        let bytes = value.to_le_bytes();
        for (i, &b) in bytes.iter().enumerate() {
            assert_eq!(mem.read_u8(addr.wrapping_add(i as u32)), b);
        }
    }
}

#[test]
fn memory_bulk_round_trip() {
    let mut rng = StdRng::seed_from_u64(0x4e50_0005);
    for _ in 0..400 {
        let addr = rng.gen::<u32>();
        let len = rng.gen_range(0usize..300);
        let data: Vec<u8> = (0..len).map(|_| rng.gen::<u8>()).collect();
        let mut mem = Memory::new();
        mem.write_bytes(addr, &data);
        assert_eq!(mem.read_bytes(addr, data.len()), data, "addr {addr:#010x}");
    }
}

#[test]
fn bitset_agrees_with_hashset_model() {
    let mut rng = StdRng::seed_from_u64(0x4e50_0006);
    for _ in 0..300 {
        let ops = rng.gen_range(0usize..100);
        let mut set = BitSet::new(200);
        let mut model = std::collections::HashSet::new();
        for _ in 0..ops {
            let index = rng.gen_range(0usize..200);
            set.insert(index);
            model.insert(index);
        }
        assert_eq!(set.count(), model.len());
        for i in 0..200 {
            assert_eq!(set.contains(i), model.contains(&i), "bit {i}");
        }
        let listed: Vec<usize> = set.iter().collect();
        let mut expected: Vec<usize> = model.into_iter().collect();
        expected.sort_unstable();
        assert_eq!(listed, expected);
    }
}
