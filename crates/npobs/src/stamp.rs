//! Artifact provenance: schema version, git commit, ISO-8601 timestamp.
//!
//! Every metrics document and benchmark JSON the workspace writes gets a
//! [`Stamp`] so a file found on disk (or attached to a CI run) can be
//! traced back to the commit and time that produced it, and so consumers
//! can detect schema drift. No external crates: the commit comes from
//! invoking `git` (falling back to `"unknown"`), and the timestamp from
//! [`SystemTime`] via a small proleptic-Gregorian conversion.

use std::process::Command;
use std::time::{SystemTime, UNIX_EPOCH};

/// Version of the metrics-document JSON layout ([`crate::MetricsDoc`]).
/// v2 added `block_bailouts` to the per-worker records (JSON and
/// Prometheus `pb_worker_block_bailouts_total`); v3 added per-worker
/// `ring_dropped` and the optional `ring` section (`pb live` telemetry:
/// `pb_ring_dropped_total`, occupancy and burst-size histograms); v4
/// added the per-worker trace-cache counters (`traces_formed`,
/// `trace_hits`, `trace_guard_exits`, `trace_declines`; Prometheus
/// `pb_trace_*_total`).
pub const METRICS_SCHEMA_VERSION: u32 = 4;

/// Version of the benchmark JSON layout (`BENCH_throughput.json`,
/// `BENCH_conform.json`).
pub const BENCH_SCHEMA_VERSION: u32 = 1;

/// Provenance attached to exported artifacts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stamp {
    /// Layout version of the document carrying this stamp.
    pub schema_version: u32,
    /// Abbreviated git commit of the workspace, or `"unknown"`.
    pub git_commit: String,
    /// UTC wall-clock time in ISO-8601 (`2026-08-06T12:34:56Z`).
    pub timestamp: String,
}

impl Stamp {
    /// A stamp for the current commit and wall clock.
    pub fn new(schema_version: u32) -> Stamp {
        Stamp {
            schema_version,
            git_commit: git_commit(),
            timestamp: iso8601_now(),
        }
    }

    /// A reproducible stamp: commit and timestamp pinned to fixed values.
    /// Used by `--deterministic` exports so CI can diff output bytes
    /// against golden fixtures.
    pub fn deterministic(schema_version: u32) -> Stamp {
        Stamp {
            schema_version,
            git_commit: "deterministic".to_string(),
            timestamp: "1970-01-01T00:00:00Z".to_string(),
        }
    }

    /// The stamp as JSON object fields (no surrounding braces), for
    /// splicing into hand-rolled JSON documents.
    pub fn json_fields(&self) -> String {
        format!(
            "\"schema_version\": {}, \"git_commit\": \"{}\", \"timestamp\": \"{}\"",
            self.schema_version, self.git_commit, self.timestamp
        )
    }
}

/// The workspace's abbreviated HEAD commit, `"unknown"` when git is
/// unavailable (e.g. a source tarball).
pub fn git_commit() -> String {
    let out = Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output();
    match out {
        Ok(out) if out.status.success() => {
            let s = String::from_utf8_lossy(&out.stdout).trim().to_string();
            if s.is_empty() {
                "unknown".to_string()
            } else {
                s
            }
        }
        _ => "unknown".to_string(),
    }
}

/// The current UTC time as `YYYY-MM-DDThh:mm:ssZ`.
pub fn iso8601_now() -> String {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    iso8601_from_unix(secs)
}

/// Formats Unix seconds as ISO-8601 UTC.
pub fn iso8601_from_unix(secs: u64) -> String {
    let days = secs / 86_400;
    let rem = secs % 86_400;
    let (y, m, d) = civil_from_days(days as i64);
    format!(
        "{y:04}-{m:02}-{d:02}T{:02}:{:02}:{:02}Z",
        rem / 3600,
        rem % 3600 / 60,
        rem % 60
    )
}

/// Days since 1970-01-01 to (year, month, day) in the proleptic
/// Gregorian calendar (Howard Hinnant's civil_from_days algorithm).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_unix_times_format_correctly() {
        assert_eq!(iso8601_from_unix(0), "1970-01-01T00:00:00Z");
        // 2000-02-29 (leap day) 12:34:56 UTC.
        assert_eq!(iso8601_from_unix(951_827_696), "2000-02-29T12:34:56Z");
        // 2026-08-06 00:00:00 UTC.
        assert_eq!(iso8601_from_unix(1_785_974_400), "2026-08-06T00:00:00Z");
        // End-of-year boundary.
        assert_eq!(iso8601_from_unix(1_767_225_599), "2025-12-31T23:59:59Z");
    }

    #[test]
    fn now_looks_like_iso8601() {
        let s = iso8601_now();
        assert_eq!(s.len(), 20, "{s}");
        assert_eq!(&s[4..5], "-");
        assert_eq!(&s[10..11], "T");
        assert!(s.ends_with('Z'));
    }

    #[test]
    fn deterministic_stamp_is_fixed() {
        let s = Stamp::deterministic(METRICS_SCHEMA_VERSION);
        assert_eq!(
            s.json_fields(),
            format!(
                "\"schema_version\": {METRICS_SCHEMA_VERSION}, \
                 \"git_commit\": \"deterministic\", \
                 \"timestamp\": \"1970-01-01T00:00:00Z\""
            )
        );
    }

    #[test]
    fn live_stamp_has_plausible_fields() {
        let s = Stamp::new(BENCH_SCHEMA_VERSION);
        assert!(!s.git_commit.is_empty());
        assert!(s.timestamp.ends_with('Z'));
    }
}
