//! Streaming log2-bucketed histograms of per-packet counts.
//!
//! The exact-value [`Histogram`](https://docs.rs) of the analysis layer
//! keeps one entry per distinct value — fine for paper tables over fixed
//! traces, unbounded for a long-running engine. A [`Log2Histogram`] is
//! the streaming counterpart: 65 fixed buckets (value 0, then one bucket
//! per power of two up to `u64::MAX`), O(1) insertion, exact min/max/mean
//! tracking, and lossless additive merging across engine workers.

/// Number of buckets: value 0, plus one bucket per power of two
/// (`[2^(k-1), 2^k)` for bucket `k` in `1..=64`).
pub const BUCKETS: usize = 65;

/// A fixed-size log2 histogram over `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Log2Histogram {
        Log2Histogram::new()
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Log2Histogram {
        Log2Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index for a value: 0 for 0, `floor(log2(v)) + 1`
    /// otherwise. Total order is preserved across bucket boundaries.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// The inclusive value range `[lo, hi]` a bucket covers.
    pub fn bucket_range(bucket: usize) -> (u64, u64) {
        match bucket {
            0 => (0, 0),
            64 => (1u64 << 63, u64::MAX),
            k => (1u64 << (k - 1), (1u64 << k) - 1),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Log2Histogram::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The exact smallest sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// The exact largest sample (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// The exact mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The count in one bucket.
    pub fn bucket_count(&self, bucket: usize) -> u64 {
        self.buckets[bucket]
    }

    /// Iterates `(bucket, lo, hi, count)` over the non-empty buckets in
    /// increasing value order.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (usize, u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| {
                let (lo, hi) = Log2Histogram::bucket_range(b);
                (b, lo, hi, c)
            })
    }

    /// Adds another histogram into this one (lossless: bucketing is
    /// deterministic, min/max/mean combine exactly).
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// The per-packet distributions the profiler streams: instructions,
/// memory accesses split by region, and basic blocks per packet.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PacketHists {
    /// Instructions executed per packet (paper Fig. 3 / Table V).
    pub instructions: Log2Histogram,
    /// Packet-memory accesses per packet (paper Fig. 4 / Table III).
    pub packet_mem: Log2Histogram,
    /// Non-packet data-memory accesses per packet (paper Fig. 5).
    pub non_packet_mem: Log2Histogram,
    /// Distinct basic blocks executed per packet (paper Fig. 8 input).
    pub blocks: Log2Histogram,
}

impl PacketHists {
    /// An empty set.
    pub fn new() -> PacketHists {
        PacketHists::default()
    }

    /// Records one packet's scalars.
    pub fn record(&mut self, instructions: u64, packet_mem: u64, non_packet_mem: u64, blocks: u64) {
        self.instructions.record(instructions);
        self.packet_mem.record(packet_mem);
        self.non_packet_mem.record(non_packet_mem);
        self.blocks.record(blocks);
    }

    /// Packets recorded.
    pub fn packets(&self) -> u64 {
        self.instructions.count()
    }

    /// Adds another set into this one.
    pub fn merge(&mut self, other: &PacketHists) {
        self.instructions.merge(&other.instructions);
        self.packet_mem.merge(&other.packet_mem);
        self.non_packet_mem.merge(&other.non_packet_mem);
        self.blocks.merge(&other.blocks);
    }

    /// Iterates `(name, histogram)` in stable export order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &Log2Histogram)> {
        [
            ("instructions_per_packet", &self.instructions),
            ("packet_mem_per_packet", &self.packet_mem),
            ("non_packet_mem_per_packet", &self.non_packet_mem),
            ("blocks_per_packet", &self.blocks),
        ]
        .into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_lands_in_bucket_zero() {
        let mut h = Log2Histogram::new();
        h.record(0);
        assert_eq!(h.bucket_count(0), 1);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(0));
        assert_eq!(h.mean(), 0.0);
        assert_eq!(Log2Histogram::bucket_range(0), (0, 0));
    }

    #[test]
    fn bucket_boundaries_are_exact() {
        // Every power of two opens a new bucket; the value just below it
        // closes the previous one.
        for k in 1..=63usize {
            let lo = 1u64 << (k - 1);
            let hi = (1u64 << k) - 1;
            assert_eq!(Log2Histogram::bucket_of(lo), k, "lo of bucket {k}");
            assert_eq!(Log2Histogram::bucket_of(hi), k, "hi of bucket {k}");
            assert_eq!(Log2Histogram::bucket_range(k), (lo, hi));
            assert_eq!(Log2Histogram::bucket_of(hi + 1), k + 1, "next bucket");
        }
        assert_eq!(Log2Histogram::bucket_of(1), 1);
        assert_eq!(Log2Histogram::bucket_of(2), 2);
        assert_eq!(Log2Histogram::bucket_of(3), 2);
        assert_eq!(Log2Histogram::bucket_of(4), 3);
    }

    #[test]
    fn u64_max_lands_in_last_bucket() {
        let mut h = Log2Histogram::new();
        h.record(u64::MAX);
        h.record(1u64 << 63);
        assert_eq!(h.bucket_count(64), 2);
        assert_eq!(h.max(), Some(u64::MAX));
        assert_eq!(h.min(), Some(1u64 << 63));
        assert_eq!(Log2Histogram::bucket_range(64), (1u64 << 63, u64::MAX));
        // The mean of two huge samples must not overflow.
        assert!(h.mean() > 9.2e18);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Log2Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.iter_nonzero().count(), 0);
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let samples_a = [0u64, 1, 2, 3, 100, 1 << 20];
        let samples_b = [7u64, 8, u64::MAX, 0];
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        let mut whole = Log2Histogram::new();
        for &v in &samples_a {
            a.record(v);
            whole.record(v);
        }
        for &v in &samples_b {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn iter_nonzero_walks_increasing_ranges() {
        let mut h = Log2Histogram::new();
        for v in [0u64, 5, 5, 1000] {
            h.record(v);
        }
        let rows: Vec<_> = h.iter_nonzero().collect();
        assert_eq!(rows[0], (0, 0, 0, 1));
        assert_eq!(rows[1], (3, 4, 7, 2));
        assert_eq!(rows[2], (10, 512, 1023, 1));
    }

    #[test]
    fn packet_hists_record_and_merge() {
        let mut a = PacketHists::new();
        a.record(100, 10, 20, 5);
        a.record(200, 12, 24, 6);
        let mut b = PacketHists::new();
        b.record(150, 11, 22, 5);
        a.merge(&b);
        assert_eq!(a.packets(), 3);
        assert_eq!(a.instructions.min(), Some(100));
        assert_eq!(a.instructions.max(), Some(200));
        assert_eq!(a.blocks.mean(), 16.0 / 3.0);
        assert_eq!(a.iter().count(), 4);
    }
}
