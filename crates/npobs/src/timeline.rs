//! In-flight telemetry: a per-worker time-series sampler and stage-span
//! tracer with Perfetto/Chrome-trace export.
//!
//! The end-of-run aggregates (`MetricsDoc`, the paper tables) cannot see
//! behavior that evolves *during* a run: streaming backpressure stalls,
//! memoization warm-up, superblock bail-out bursts. This module records
//! that evolution with bounded memory and without locks on any hot path:
//!
//! * every pipeline lane (engine worker, stream reader, merger) owns a
//!   private sampler — a bounded ring of timestamped [`Sample`]s snapped
//!   every `interval` packets — and a private [`SpanLog`] of stage spans
//!   (reader chunk / worker chunk / merge, tagged with chunk ids). Lanes
//!   share nothing while the run is live; the engine merges them once,
//!   after the last thread has joined.
//! * two clocks: **wall** samples stamp nanoseconds since run start and
//!   carry the operational counters (queue depth, busy time, backpressure
//!   wait, memoization traffic); **logical** samples
//!   ([`Timeline::deterministic`]) key on packets retired in *global
//!   trace order* via [`LogicalSeries`], so the merged series is a pure
//!   function of the trace — byte-identical at any thread count and chunk
//!   size, which is what lets CI keep golden timeline fixtures.
//! * three exports: stamped JSON ([`Timeline::to_json`]), stamped CSV
//!   ([`Timeline::to_csv`]), and a Chrome trace-event JSON
//!   ([`Timeline::to_chrome_trace`]) that Perfetto and `chrome://tracing`
//!   load directly — spans become `X` slices per lane, samples become `C`
//!   counter tracks.
//!
//! Like every exporter in this crate the serializers are hand-rolled and
//! byte-stable: equal timelines serialize to identical bytes.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::time::Instant;

use crate::stamp::Stamp;

/// Version of the timeline-document JSON/CSV layout.
///
/// v2 added `ring_dropped` to every sample (live-ingestion drops).
pub const TIMELINE_SCHEMA_VERSION: u32 = 2;

/// Sampler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineSpec {
    /// Packets between samples (per lane for wall sampling, per logical
    /// bucket for deterministic sampling). Minimum 1.
    pub interval: u64,
    /// Maximum samples retained per lane (wall: ring of the most recent;
    /// logical: bucket count before the interval doubles). Minimum 2.
    pub capacity: usize,
    /// Key samples on logical time — packets retired in global trace
    /// order — instead of the wall clock, zeroing every wall-dependent
    /// counter, so the merged export is byte-identical at any thread
    /// count.
    pub deterministic: bool,
}

impl TimelineSpec {
    /// Default packets between samples.
    pub const DEFAULT_INTERVAL: u64 = 1024;
    /// Default per-lane sample capacity.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// A wall-clock spec at the default interval and capacity.
    pub fn wall() -> TimelineSpec {
        TimelineSpec {
            interval: TimelineSpec::DEFAULT_INTERVAL,
            capacity: TimelineSpec::DEFAULT_CAPACITY,
            deterministic: false,
        }
    }

    /// A deterministic (logical-clock) spec at the default interval and
    /// capacity.
    pub fn logical() -> TimelineSpec {
        TimelineSpec {
            deterministic: true,
            ..TimelineSpec::wall()
        }
    }

    /// The spec with `interval` packets between samples (minimum 1).
    pub fn every(self, interval: u64) -> TimelineSpec {
        TimelineSpec {
            interval: interval.max(1),
            ..self
        }
    }
}

impl Default for TimelineSpec {
    fn default() -> TimelineSpec {
        TimelineSpec::wall()
    }
}

/// One timestamped counter snapshot from one lane. Counters are
/// cumulative for the lane (rates are derived at export time), so a
/// dropped sample never corrupts later ones.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Sample {
    /// Wall nanoseconds since run start, or packets retired in global
    /// trace order for deterministic timelines.
    pub t: u64,
    /// The lane that recorded the sample (see [`Timeline::lane_name`]).
    pub lane: usize,
    /// Packets retired by this lane so far (globally, for deterministic
    /// samples).
    pub packets: u64,
    /// Instructions retired by this lane so far.
    pub instructions: u64,
    /// Accesses to packet memory so far.
    pub mem_packet: u64,
    /// Accesses to non-packet memory so far.
    pub mem_non_packet: u64,
    /// Items currently queued to the lane (packets left in a batch
    /// worker's shard; chunks waiting in a stream worker's input queue;
    /// in-flight chunks for the reader). Zero in deterministic samples.
    pub queue_depth: u64,
    /// Nanoseconds this lane has spent executing packets so far. Zero in
    /// deterministic samples.
    pub busy_ns: u64,
    /// Nanoseconds the lane has spent blocked on backpressure (the
    /// reader's semaphore wait) so far. Zero in deterministic samples.
    pub backpressure_ns: u64,
    /// Flow-memoization cache hits so far. Zero in deterministic samples
    /// (per-worker caches make hits thread-count-dependent).
    pub memo_hits: u64,
    /// Flow-memoization cache misses so far. Zero in deterministic
    /// samples.
    pub memo_misses: u64,
    /// Flow-memoization cache evictions so far. Zero in deterministic
    /// samples.
    pub memo_evictions: u64,
    /// Superblock-engine bail-outs to the per-instruction loop so far.
    pub block_bailouts: u64,
    /// Packets dropped at the lane's ingestion ring so far (`pb live`
    /// overload). Zero outside live mode and in deterministic samples —
    /// drops are a timing artifact, so logical timelines exclude them.
    pub ring_dropped: u64,
}

/// Per-packet counter deltas folded into a [`LogicalSeries`] bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Packets retired.
    pub packets: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Packet-memory accesses.
    pub mem_packet: u64,
    /// Non-packet-memory accesses.
    pub mem_non_packet: u64,
    /// Superblock bail-outs.
    pub block_bailouts: u64,
}

impl Counters {
    fn add(&mut self, other: &Counters) {
        self.packets += other.packets;
        self.instructions += other.instructions;
        self.mem_packet += other.mem_packet;
        self.mem_non_packet += other.mem_non_packet;
        self.block_bailouts += other.block_bailouts;
    }
}

/// Pipeline stage a [`Span`] covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Reader: building + dispatching one chunk (includes the
    /// backpressure wait for the chunk's permit).
    Read,
    /// Worker: executing one chunk (or, in batch runs, one worker's whole
    /// shard).
    Exec,
    /// Merger: folding one chunk outcome (or the batch engine's final
    /// trace-order reassembly).
    Merge,
}

impl Stage {
    /// The stage name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Read => "read",
            Stage::Exec => "exec",
            Stage::Merge => "merge",
        }
    }
}

/// One traced stage span: `[start_ns, start_ns + dur_ns)` on a lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// The pipeline stage.
    pub stage: Stage,
    /// Chunk id for streaming spans; worker index for batch exec spans.
    pub id: u64,
    /// The lane the span ran on (see [`Timeline::lane_name`]).
    pub lane: usize,
    /// Wall nanoseconds since run start.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
    /// Packets the span covered.
    pub packets: u64,
}

/// A lane-private, bounded log of stage spans. When full, the oldest
/// spans are dropped (and counted) so soak runs keep the most recent
/// window.
#[derive(Debug, Clone)]
pub struct SpanLog {
    t0: Instant,
    spans: VecDeque<Span>,
    capacity: usize,
    dropped: u64,
}

impl SpanLog {
    /// A log whose span timestamps are relative to `t0` (the run start),
    /// retaining at most `capacity` spans.
    pub fn new(t0: Instant, capacity: usize) -> SpanLog {
        SpanLog {
            t0,
            spans: VecDeque::new(),
            capacity: capacity.max(2),
            dropped: 0,
        }
    }

    /// The instant span timestamps are measured from.
    pub fn t0(&self) -> Instant {
        self.t0
    }

    /// Records a span that began at `began` and ends now.
    pub fn record(&mut self, stage: Stage, id: u64, lane: usize, began: Instant, packets: u64) {
        let start_ns = ns_u64(began.saturating_duration_since(self.t0));
        let dur_ns = ns_u64(began.elapsed());
        if self.spans.len() >= self.capacity {
            self.spans.pop_front();
            self.dropped += 1;
        }
        self.spans.push_back(Span {
            stage,
            id,
            lane,
            start_ns,
            dur_ns,
            packets,
        });
    }

    fn into_parts(self) -> (Vec<Span>, u64) {
        (self.spans.into(), self.dropped)
    }
}

fn ns_u64(d: std::time::Duration) -> u64 {
    d.as_nanos().min(u128::from(u64::MAX)) as u64
}

/// A lane-private wall-clock sampler: a bounded ring of the most recent
/// [`Sample`]s, snapped every `interval` packets. No locks, no atomics —
/// the owning thread is the only writer, and the engine merges rings
/// after joining.
#[derive(Debug, Clone)]
pub struct WallSampler {
    spec: TimelineSpec,
    lane: usize,
    t0: Instant,
    packets: u64,
    next_due: u64,
    ring: VecDeque<Sample>,
    dropped: u64,
}

impl WallSampler {
    /// A sampler for `lane` with timestamps relative to `t0`.
    pub fn new(spec: TimelineSpec, lane: usize, t0: Instant) -> WallSampler {
        WallSampler {
            spec,
            lane,
            t0,
            packets: 0,
            next_due: spec.interval.max(1),
            ring: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Counts one retired packet; returns `true` when a sample is due
    /// (the caller then snapshots its counters into [`WallSampler::push`]).
    /// This is the only per-packet cost: one increment and one compare.
    #[inline]
    pub fn on_packet(&mut self) -> bool {
        self.packets += 1;
        self.packets >= self.next_due
    }

    /// Counts `n` retired packets at once (chunk-granular callers);
    /// returns `true` when a sample is due.
    #[inline]
    pub fn on_packets(&mut self, n: u64) -> bool {
        self.packets += n;
        self.packets >= self.next_due
    }

    /// Packets counted so far.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// The lane this sampler stamps into its samples.
    pub fn lane(&self) -> usize {
        self.lane
    }

    /// Pushes a sample: the timestamp, lane, and packet count are filled
    /// in here, everything else is the caller's snapshot.
    pub fn push(&mut self, mut sample: Sample) {
        sample.t = ns_u64(self.t0.elapsed());
        sample.lane = self.lane;
        sample.packets = self.packets;
        if self.ring.len() >= self.spec.capacity.max(2) {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(sample);
        self.next_due = self.packets + self.spec.interval.max(1);
    }

    fn into_parts(self) -> (Vec<Sample>, u64) {
        (self.ring.into(), self.dropped)
    }
}

/// The deterministic sampler: per-packet counter deltas folded into
/// buckets keyed on the packet's *global trace index*. Buckets are pure
/// sums, so series recorded by different workers over disjoint packet
/// subsets merge into exactly the series a serial run would record —
/// thread-count and chunk-size invariant by construction.
///
/// Memory stays bounded without breaking determinism: when a bucket
/// index would exceed the capacity, the interval doubles and existing
/// buckets fold pairwise. The final interval is the smallest
/// power-of-two multiple of the base interval that fits the trace, a
/// pure function of trace length — never of scheduling.
#[derive(Debug, Clone)]
pub struct LogicalSeries {
    interval: u64,
    capacity: usize,
    buckets: Vec<Counters>,
}

impl LogicalSeries {
    /// An empty series with `spec.interval` packets per bucket and at
    /// most `spec.capacity` buckets.
    pub fn new(spec: TimelineSpec) -> LogicalSeries {
        LogicalSeries {
            interval: spec.interval.max(1),
            capacity: spec.capacity.max(2),
            buckets: Vec::new(),
        }
    }

    /// Folds one packet's deltas into the bucket owning global trace
    /// index `index`.
    #[inline]
    pub fn record(&mut self, index: u64, delta: &Counters) {
        let mut bucket = (index / self.interval) as usize;
        while bucket >= self.capacity {
            self.coarsen();
            bucket = (index / self.interval) as usize;
        }
        if bucket >= self.buckets.len() {
            self.buckets.resize(bucket + 1, Counters::default());
        }
        self.buckets[bucket].add(delta);
    }

    /// Doubles the interval, folding buckets pairwise.
    fn coarsen(&mut self) {
        self.interval *= 2;
        let folded = self.buckets.len().div_ceil(2);
        for i in 0..folded {
            let hi = self.buckets.get(2 * i + 1).copied().unwrap_or_default();
            let mut merged = self.buckets[2 * i];
            merged.add(&hi);
            self.buckets[i] = merged;
        }
        self.buckets.truncate(folded);
    }

    /// Coarsens this series until its interval is exactly `interval`
    /// (which must be this series' interval times `2^k` for some `k`).
    fn rescale_to(&mut self, interval: u64) {
        while self.interval < interval {
            self.coarsen();
        }
        debug_assert_eq!(
            self.interval, interval,
            "interval is not a power-of-two multiple"
        );
    }

    /// Merges another series (recorded over a disjoint packet subset of
    /// the same trace) into this one. Both rescale to the coarser
    /// interval first.
    pub fn merge(&mut self, mut other: LogicalSeries) {
        let interval = self.interval.max(other.interval);
        self.rescale_to(interval);
        other.rescale_to(interval);
        if other.buckets.len() > self.buckets.len() {
            self.buckets
                .resize(other.buckets.len(), Counters::default());
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            mine.add(theirs);
        }
    }

    /// The current packets-per-bucket interval.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Renders the series as cumulative samples keyed on logical time
    /// (`t` = packets retired in trace order at the bucket boundary).
    fn into_samples(self) -> Vec<Sample> {
        let mut out = Vec::with_capacity(self.buckets.len());
        let mut cum = Counters::default();
        for bucket in &self.buckets {
            cum.add(bucket);
            out.push(Sample {
                t: cum.packets,
                lane: 0,
                packets: cum.packets,
                instructions: cum.instructions,
                mem_packet: cum.mem_packet,
                mem_non_packet: cum.mem_non_packet,
                block_bailouts: cum.block_bailouts,
                ..Sample::default()
            });
        }
        out
    }
}

/// The merged result of one run's telemetry: samples and spans from every
/// lane, ordered deterministically.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timeline {
    /// Whether samples are keyed on logical time (packets retired) rather
    /// than wall nanoseconds.
    pub deterministic: bool,
    /// Packets between samples (the final, possibly coarsened, interval
    /// for deterministic timelines).
    pub interval: u64,
    /// Worker lanes `0..workers`; lane `workers` is the stream reader,
    /// lane `workers + 1` the merger.
    pub workers: usize,
    /// Merged samples, ordered by `(t, lane)`.
    pub samples: Vec<Sample>,
    /// Merged spans, ordered by `(start_ns, lane, id)`. Empty for
    /// deterministic timelines (span times are wall times by nature).
    pub spans: Vec<Span>,
    /// Samples dropped by full rings.
    pub dropped_samples: u64,
    /// Spans dropped by full logs.
    pub dropped_spans: u64,
}

impl Timeline {
    /// Builds a wall-clock timeline from per-lane samplers and span logs.
    pub fn from_wall(
        interval: u64,
        workers: usize,
        samplers: Vec<WallSampler>,
        logs: Vec<SpanLog>,
    ) -> Timeline {
        let mut samples = Vec::new();
        let mut dropped_samples = 0;
        for sampler in samplers {
            let (lane_samples, dropped) = sampler.into_parts();
            samples.extend(lane_samples);
            dropped_samples += dropped;
        }
        samples.sort_by_key(|s| (s.t, s.lane, s.packets));
        let mut spans = Vec::new();
        let mut dropped_spans = 0;
        for log in logs {
            let (lane_spans, dropped) = log.into_parts();
            spans.extend(lane_spans);
            dropped_spans += dropped;
        }
        spans.sort_by_key(|s| (s.start_ns, s.lane, s.id));
        Timeline {
            deterministic: false,
            interval,
            workers,
            samples,
            spans,
            dropped_samples,
            dropped_spans,
        }
    }

    /// Builds a deterministic timeline by merging per-worker logical
    /// series (merge order is irrelevant: bucket sums are commutative).
    /// The result is always a single merged lane — `workers` is 1, never
    /// the thread count, so the document carries no trace of how the run
    /// was parallelized and stays byte-identical at any `--threads`.
    pub fn from_logical(series: Vec<LogicalSeries>) -> Timeline {
        let mut iter = series.into_iter();
        let merged = iter.next().map(|first| {
            iter.fold(first, |mut acc, s| {
                acc.merge(s);
                acc
            })
        });
        let (interval, samples) = match merged {
            Some(s) => (s.interval(), s.into_samples()),
            None => (0, Vec::new()),
        };
        Timeline {
            deterministic: true,
            interval,
            workers: 1,
            samples,
            spans: Vec::new(),
            dropped_samples: 0,
            dropped_spans: 0,
        }
    }

    /// The human name of a lane: `worker <n>`, `reader`, or `merger`.
    pub fn lane_name(&self, lane: usize) -> String {
        if lane == self.workers {
            "reader".to_string()
        } else if lane == self.workers + 1 {
            "merger".to_string()
        } else {
            format!("worker {lane}")
        }
    }

    /// Serializes the timeline as a stamped JSON document. Stable field
    /// order; equal timelines produce identical bytes.
    pub fn to_json(&self, stamp: &Stamp, app: &str, trace: &str) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  {},", stamp.json_fields());
        let _ = writeln!(out, "  \"app\": \"{app}\",");
        let _ = writeln!(out, "  \"trace\": \"{trace}\",");
        let _ = writeln!(
            out,
            "  \"clock\": \"{}\",",
            if self.deterministic {
                "logical"
            } else {
                "wall"
            }
        );
        let _ = writeln!(out, "  \"interval\": {},", self.interval);
        let _ = writeln!(out, "  \"workers\": {},", self.workers);
        let _ = writeln!(out, "  \"dropped_samples\": {},", self.dropped_samples);
        let _ = writeln!(out, "  \"dropped_spans\": {},", self.dropped_spans);
        out.push_str("  \"samples\": [\n");
        for (i, s) in self.samples.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"t\": {}, \"lane\": {}, \"packets\": {}, \"instructions\": {}, \
                 \"mem_packet\": {}, \"mem_non_packet\": {}, \"queue_depth\": {}, \
                 \"busy_ns\": {}, \"backpressure_ns\": {}, \"memo_hits\": {}, \
                 \"memo_misses\": {}, \"memo_evictions\": {}, \"block_bailouts\": {}, \
                 \"ring_dropped\": {}}}",
                s.t,
                s.lane,
                s.packets,
                s.instructions,
                s.mem_packet,
                s.mem_non_packet,
                s.queue_depth,
                s.busy_ns,
                s.backpressure_ns,
                s.memo_hits,
                s.memo_misses,
                s.memo_evictions,
                s.block_bailouts,
                s.ring_dropped
            );
            out.push_str(if i + 1 == self.samples.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str("  \"spans\": [\n");
        for (i, s) in self.spans.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"stage\": \"{}\", \"id\": {}, \"lane\": {}, \"start_ns\": {}, \
                 \"dur_ns\": {}, \"packets\": {}}}",
                s.stage.name(),
                s.id,
                s.lane,
                s.start_ns,
                s.dur_ns,
                s.packets
            );
            out.push_str(if i + 1 == self.spans.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Serializes the sample series as CSV, with the stamp and span
    /// summary as `#`-prefixed header comments.
    pub fn to_csv(&self, stamp: &Stamp, app: &str, trace: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# schema_version={} git_commit={} timestamp={}",
            stamp.schema_version, stamp.git_commit, stamp.timestamp
        );
        let _ = writeln!(
            out,
            "# app={app} trace={trace} clock={} interval={} workers={} \
             dropped_samples={} spans={} dropped_spans={}",
            if self.deterministic {
                "logical"
            } else {
                "wall"
            },
            self.interval,
            self.workers,
            self.dropped_samples,
            self.spans.len(),
            self.dropped_spans
        );
        out.push_str(
            "t,lane,packets,instructions,mem_packet,mem_non_packet,queue_depth,\
             busy_ns,backpressure_ns,memo_hits,memo_misses,memo_evictions,block_bailouts,\
             ring_dropped\n",
        );
        for s in &self.samples {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                s.t,
                s.lane,
                s.packets,
                s.instructions,
                s.mem_packet,
                s.mem_non_packet,
                s.queue_depth,
                s.busy_ns,
                s.backpressure_ns,
                s.memo_hits,
                s.memo_misses,
                s.memo_evictions,
                s.block_bailouts,
                s.ring_dropped
            );
        }
        out
    }

    /// Serializes the timeline in Chrome trace-event format — loadable by
    /// Perfetto (<https://ui.perfetto.dev>) and `chrome://tracing`.
    ///
    /// Spans become complete (`"ph": "X"`) slices on one track per lane;
    /// samples become counter (`"ph": "C"`) tracks: packet rate, queue
    /// depth, backpressure, memoization hit rate, and superblock
    /// bail-outs per lane. Timestamps are microseconds; for deterministic
    /// timelines logical time (packets retired) is used as the
    /// microsecond axis, which Perfetto renders fine.
    pub fn to_chrome_trace(&self, app: &str, trace: &str) -> String {
        let mut out = String::new();
        out.push_str("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
        let mut first = true;
        let mut push = |line: String, out: &mut String| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str("  ");
            out.push_str(&line);
        };
        push(
            format!(
                "{{\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": \"process_name\", \
                 \"args\": {{\"name\": \"pb {app} {trace}\"}}}}"
            ),
            &mut out,
        );
        let mut lanes: Vec<usize> = self
            .samples
            .iter()
            .map(|s| s.lane)
            .chain(self.spans.iter().map(|s| s.lane))
            .collect();
        lanes.sort_unstable();
        lanes.dedup();
        for &lane in &lanes {
            push(
                format!(
                    "{{\"ph\": \"M\", \"pid\": 1, \"tid\": {lane}, \"name\": \"thread_name\", \
                     \"args\": {{\"name\": \"{}\"}}}}",
                    self.lane_name(lane)
                ),
                &mut out,
            );
        }
        for s in &self.spans {
            push(
                format!(
                    "{{\"ph\": \"X\", \"pid\": 1, \"tid\": {}, \"name\": \"{} #{}\", \
                     \"ts\": {}, \"dur\": {}, \"args\": {{\"id\": {}, \"packets\": {}}}}}",
                    s.lane,
                    s.stage.name(),
                    s.id,
                    us(s.start_ns),
                    us(s.dur_ns),
                    s.id,
                    s.packets
                ),
                &mut out,
            );
        }
        // Counter tracks: one per (lane, counter). Rates come from
        // consecutive-sample deltas per lane.
        let mut last: Vec<Option<&Sample>> = Vec::new();
        for s in &self.samples {
            if s.lane >= last.len() {
                last.resize(s.lane + 1, None);
            }
            let prev = last[s.lane];
            let name = self.lane_name(s.lane);
            let ts = us(s.t);
            let pps = match prev {
                Some(p) if s.t > p.t => {
                    let dt = (s.t - p.t) as f64 / if self.deterministic { 1.0 } else { 1e9 };
                    let dp = s.packets.saturating_sub(p.packets) as f64;
                    if self.deterministic {
                        dp
                    } else {
                        dp / dt
                    }
                }
                _ => 0.0,
            };
            push(
                format!(
                    "{{\"ph\": \"C\", \"pid\": 1, \"tid\": {}, \"name\": \"pps [{name}]\", \
                     \"ts\": {ts}, \"args\": {{\"pps\": {pps:.0}}}}}",
                    s.lane
                ),
                &mut out,
            );
            push(
                format!(
                    "{{\"ph\": \"C\", \"pid\": 1, \"tid\": {}, \"name\": \"queue [{name}]\", \
                     \"ts\": {ts}, \"args\": {{\"depth\": {}}}}}",
                    s.lane, s.queue_depth
                ),
                &mut out,
            );
            if s.backpressure_ns > 0 {
                push(
                    format!(
                        "{{\"ph\": \"C\", \"pid\": 1, \"tid\": {}, \
                         \"name\": \"backpressure_ms [{name}]\", \"ts\": {ts}, \
                         \"args\": {{\"ms\": {:.3}}}}}",
                        s.lane,
                        s.backpressure_ns as f64 / 1e6
                    ),
                    &mut out,
                );
            }
            if s.memo_hits + s.memo_misses > 0 {
                push(
                    format!(
                        "{{\"ph\": \"C\", \"pid\": 1, \"tid\": {}, \
                         \"name\": \"memo_hit_pct [{name}]\", \"ts\": {ts}, \
                         \"args\": {{\"pct\": {:.1}}}}}",
                        s.lane,
                        s.memo_hits as f64 / (s.memo_hits + s.memo_misses) as f64 * 100.0
                    ),
                    &mut out,
                );
            }
            if s.block_bailouts > 0 {
                push(
                    format!(
                        "{{\"ph\": \"C\", \"pid\": 1, \"tid\": {}, \
                         \"name\": \"bailouts [{name}]\", \"ts\": {ts}, \
                         \"args\": {{\"count\": {}}}}}",
                        s.lane, s.block_bailouts
                    ),
                    &mut out,
                );
            }
            last[s.lane] = Some(s);
        }
        out.push_str("\n]}\n");
        out
    }
}

/// Nanoseconds (or logical packets) to the microsecond axis Chrome trace
/// events use: fractional microseconds for wall times, the raw value for
/// logical time.
fn us(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stamp::Stamp;

    fn spec(interval: u64, capacity: usize) -> TimelineSpec {
        TimelineSpec {
            interval,
            capacity,
            deterministic: true,
        }
    }

    fn one_packet(instructions: u64) -> Counters {
        Counters {
            packets: 1,
            instructions,
            mem_packet: 2,
            mem_non_packet: 3,
            block_bailouts: 0,
        }
    }

    #[test]
    fn logical_series_is_partition_invariant() {
        // 100 packets with index-dependent costs, recorded serially vs
        // split round-robin over 4 "workers": identical samples.
        let mut serial = LogicalSeries::new(spec(8, 1024));
        for i in 0..100u64 {
            serial.record(i, &one_packet(10 + i % 7));
        }
        let mut shards: Vec<LogicalSeries> =
            (0..4).map(|_| LogicalSeries::new(spec(8, 1024))).collect();
        for i in 0..100u64 {
            shards[(i % 4) as usize].record(i, &one_packet(10 + i % 7));
        }
        let a = Timeline::from_logical(vec![serial]);
        let b = Timeline::from_logical(shards);
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.interval, b.interval);
        assert_eq!(a.samples.len(), 13); // ceil(100 / 8)
        let last = a.samples.last().unwrap();
        assert_eq!(last.t, 100);
        assert_eq!(last.packets, 100);
        // Cumulative totals match the plain sums.
        assert_eq!(
            last.instructions,
            (0..100u64).map(|i| 10 + i % 7).sum::<u64>()
        );
    }

    #[test]
    fn logical_series_coarsens_deterministically() {
        // Capacity 4 buckets, interval 1: 32 packets force interval 8.
        let mut serial = LogicalSeries::new(spec(1, 4));
        for i in 0..32u64 {
            serial.record(i, &one_packet(1));
        }
        assert_eq!(serial.interval(), 8);
        // The same packets split over 2 workers coarsen to the same
        // interval and the same buckets once merged.
        let mut shards: Vec<LogicalSeries> =
            (0..2).map(|_| LogicalSeries::new(spec(1, 4))).collect();
        for i in 0..32u64 {
            shards[(i % 2) as usize].record(i, &one_packet(1));
        }
        let a = Timeline::from_logical(vec![serial]);
        let b = Timeline::from_logical(shards);
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.interval, 8);
    }

    #[test]
    fn merge_rescales_mixed_intervals() {
        // One worker saw only early packets (fine interval), the other
        // saw the tail (coarsened): merge must rescale both to the
        // coarser interval.
        let mut early = LogicalSeries::new(spec(1, 4));
        for i in 0..3u64 {
            early.record(i, &one_packet(1));
        }
        let mut late = LogicalSeries::new(spec(1, 4));
        for i in 3..16u64 {
            late.record(i, &one_packet(1));
        }
        assert_eq!(early.interval(), 1);
        assert_eq!(late.interval(), 4);
        let t = Timeline::from_logical(vec![early, late]);
        assert_eq!(t.interval, 4);
        let total: u64 = t.samples.last().unwrap().packets;
        assert_eq!(total, 16);
    }

    #[test]
    fn wall_ring_keeps_the_most_recent_samples() {
        let t0 = Instant::now();
        let mut s = WallSampler::new(
            TimelineSpec {
                interval: 1,
                capacity: 2,
                deterministic: false,
            },
            3,
            t0,
        );
        for _ in 0..5 {
            assert!(s.on_packet());
            s.push(Sample::default());
        }
        let (samples, dropped) = s.into_parts();
        assert_eq!(samples.len(), 2);
        assert_eq!(dropped, 3);
        assert_eq!(samples[0].packets, 4);
        assert_eq!(samples[1].packets, 5);
        assert!(samples.iter().all(|s| s.lane == 3));
    }

    #[test]
    fn wall_sampler_fires_on_the_interval() {
        let mut s = WallSampler::new(
            TimelineSpec {
                interval: 4,
                capacity: 64,
                deterministic: false,
            },
            0,
            Instant::now(),
        );
        let mut fired = Vec::new();
        for i in 1..=12u64 {
            if s.on_packet() {
                s.push(Sample::default());
                fired.push(i);
            }
        }
        assert_eq!(fired, vec![4, 8, 12]);
    }

    #[test]
    fn span_log_drops_oldest_when_full() {
        let t0 = Instant::now();
        let mut log = SpanLog::new(t0, 2);
        for id in 0..5u64 {
            log.record(Stage::Exec, id, 1, Instant::now(), 10);
        }
        let (spans, dropped) = log.into_parts();
        assert_eq!(spans.len(), 2);
        assert_eq!(dropped, 3);
        assert_eq!(spans[0].id, 3);
        assert_eq!(spans[1].id, 4);
    }

    #[test]
    fn json_and_csv_are_stable_and_balanced() {
        let mut series = LogicalSeries::new(spec(4, 64));
        for i in 0..10u64 {
            series.record(i, &one_packet(5));
        }
        let t = Timeline::from_logical(vec![series]);
        let stamp = Stamp::deterministic(TIMELINE_SCHEMA_VERSION);
        let json = t.to_json(&stamp, "radix", "mra");
        assert_eq!(json, t.to_json(&stamp, "radix", "mra"));
        assert!(json.contains("\"clock\": \"logical\""));
        assert!(json.contains("\"interval\": 4"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let csv = t.to_csv(&stamp, "radix", "mra");
        assert!(csv.starts_with("# schema_version=2"));
        assert!(json.contains("\"ring_dropped\": 0"));
        // Header comment lines + column header + one row per sample.
        assert_eq!(csv.lines().count(), 3 + t.samples.len());
    }

    #[test]
    fn chrome_trace_is_loadable_shaped() {
        let t0 = Instant::now();
        let mut sampler = WallSampler::new(
            TimelineSpec {
                interval: 1,
                capacity: 16,
                deterministic: false,
            },
            0,
            t0,
        );
        sampler.on_packet();
        sampler.push(Sample {
            queue_depth: 5,
            memo_hits: 3,
            memo_misses: 1,
            ..Sample::default()
        });
        let mut log = SpanLog::new(t0, 16);
        log.record(Stage::Exec, 0, 0, t0, 1);
        log.record(Stage::Merge, 0, 3, t0, 1);
        let t = Timeline::from_wall(1, 2, vec![sampler], vec![log]);
        let trace = t.to_chrome_trace("trie", "mra");
        assert!(trace.starts_with("{\"displayTimeUnit\""));
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("\"ph\": \"X\""));
        assert!(trace.contains("\"ph\": \"C\""));
        assert!(trace.contains("\"name\": \"exec #0\""));
        assert!(trace.contains("\"name\": \"merger\""));
        assert!(trace.contains("memo_hit_pct"));
        assert_eq!(trace.matches('{').count(), trace.matches('}').count());
        assert_eq!(trace.matches('[').count(), trace.matches(']').count());
    }

    #[test]
    fn empty_timeline_exports_cleanly() {
        let t = Timeline::from_logical(Vec::new());
        let stamp = Stamp::deterministic(TIMELINE_SCHEMA_VERSION);
        let json = t.to_json(&stamp, "trie", "mra");
        assert!(json.contains("\"samples\": [\n  ]"));
        let trace = t.to_chrome_trace("trie", "mra");
        assert_eq!(trace.matches('{').count(), trace.matches('}').count());
    }
}
