//! Basic-block heat profiling.
//!
//! A [`HeatObserver`] rides the `npsim` interpreter loops through the
//! monomorphized [`Observer`] hooks and accumulates, per static basic
//! block, how many times the block was entered and how many instructions
//! retired inside it — the dynamic counterpart of the analysis layer's
//! per-packet block *sets*. Loop-heavy blocks (the data the paper's block
//! methodology and Shaccour & Mansour's loop-redundancy analysis need)
//! show up as instruction counts far above `entries x block length`.
//!
//! Worker-private observers merge additively, so profiles are
//! bit-identical at every engine thread count. [`BlockHeat`] renders the
//! result as a fixed-width table or as flamegraph-collapsed text
//! (`app;label count` lines, one frame per block) keyed by the same
//! `L<n>` labels `pb disasm` prints.

use npsim::bblock::BlockMap;
use npsim::isa::Inst;
use npsim::obs::Observer;
use npsim::Program;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Streams block entries and per-block instruction counts off the
/// interpreter loops.
#[derive(Debug, Clone)]
pub struct HeatObserver {
    /// Per-instruction block id (from [`BlockMap::block_ids`]).
    block_of: Vec<u32>,
    /// Per-instruction "is a block leader" flag.
    is_leader: Vec<bool>,
    /// Per-block entry counts.
    entries: Vec<u64>,
    /// Per-block retired-instruction counts.
    instructions: Vec<u64>,
    /// Block-to-successor transition counts, keyed `(from, to)`. Every
    /// block entry with a known predecessor records one edge, so edge
    /// counts are the data trace formation selects chains from (see
    /// `npsim::trace`). A `BTreeMap` keeps iteration deterministic.
    edges: BTreeMap<(u32, u32), u64>,
    /// Block executing at the previous retired instruction
    /// (`u32::MAX` = none, reset at every run start).
    prev: u32,
}

impl HeatObserver {
    /// An observer for one application's block partition.
    pub fn new(block_map: &BlockMap) -> HeatObserver {
        let block_of = block_map.block_ids().to_vec();
        let mut is_leader = vec![false; block_of.len()];
        for &leader in block_map.leaders() {
            is_leader[leader] = true;
        }
        HeatObserver {
            block_of,
            is_leader,
            entries: vec![0; block_map.num_blocks()],
            instructions: vec![0; block_map.num_blocks()],
            edges: BTreeMap::new(),
            prev: u32::MAX,
        }
    }

    /// Per-block entry counts.
    pub fn entries(&self) -> &[u64] {
        &self.entries
    }

    /// Per-block retired-instruction counts.
    pub fn instructions(&self) -> &[u64] {
        &self.instructions
    }

    /// Total instructions observed.
    pub fn total_instructions(&self) -> u64 {
        self.instructions.iter().sum()
    }

    /// Block-to-successor transition counts, keyed `(from, to)`.
    pub fn edges(&self) -> &BTreeMap<(u32, u32), u64> {
        &self.edges
    }

    /// Adds another observer's counts into this one. Merging is additive
    /// and commutative, which is what makes engine profiles independent
    /// of worker count and scheduling.
    ///
    /// # Panics
    ///
    /// Panics if the observers were built for different programs.
    pub fn merge(&mut self, other: &HeatObserver) {
        assert_eq!(
            self.block_of.len(),
            other.block_of.len(),
            "merging heat observers from different programs"
        );
        for (a, b) in self.entries.iter_mut().zip(&other.entries) {
            *a += b;
        }
        for (a, b) in self.instructions.iter_mut().zip(&other.instructions) {
            *a += b;
        }
        for (edge, count) in &other.edges {
            *self.edges.entry(*edge).or_insert(0) += count;
        }
    }

    /// Freezes the counts into a labelled, renderable [`BlockHeat`].
    pub fn into_heat(self, program: &Program, block_map: &BlockMap) -> BlockHeat {
        BlockHeat {
            labels: block_labels(program, block_map),
            lengths: (0..block_map.num_blocks())
                .map(|b| block_map.block_range(b).len() as u64)
                .collect(),
            entries: self.entries,
            instructions: self.instructions,
            edges: self.edges,
        }
    }
}

impl Observer for HeatObserver {
    // Heat only needs entry and retire counts per block, so the superblock
    // engine can report whole-block retires through `on_block` instead of
    // one `on_inst` per instruction. The per-instruction hook still fires
    // on the engine's fallback paths and on the full-detail loop, and the
    // two accountings agree exactly: a fully-retired block always enters
    // at its leader (one entry) and retires all `len` instructions.
    const BLOCK_LEVEL: bool = true;

    #[inline(always)]
    fn on_run_start(&mut self) {
        self.prev = u32::MAX;
    }

    #[inline(always)]
    fn on_inst(&mut self, _pc: u32, index: usize, _inst: &Inst) {
        let block = self.block_of[index];
        // A block is entered at its leader, or whenever control appears
        // in a different block than the previous instruction's (entry
        // points that are not static leaders).
        if self.is_leader[index] || block != self.prev {
            if self.prev != u32::MAX {
                *self.edges.entry((self.prev, block)).or_insert(0) += 1;
            }
            self.entries[block as usize] += 1;
            self.prev = block;
        }
        self.instructions[block as usize] += 1;
    }

    #[inline(always)]
    fn on_block(&mut self, block: usize, _first: usize, len: usize) {
        if self.prev != u32::MAX {
            *self.edges.entry((self.prev, block as u32)).or_insert(0) += 1;
        }
        self.entries[block] += 1;
        self.instructions[block] += len as u64;
        self.prev = block as u32;
    }
}

/// Stable display labels for each basic block: the disassembler's `L<n>`
/// label when the block's leader is a static branch/jump target, the
/// entry label `b<i>` otherwise.
pub fn block_labels(program: &Program, block_map: &BlockMap) -> Vec<String> {
    let targets = npasm::target_labels(program);
    (0..block_map.num_blocks())
        .map(|b| {
            let pc = program.pc_of(block_map.leader(b));
            targets.get(&pc).cloned().unwrap_or_else(|| format!("b{b}"))
        })
        .collect()
}

/// A labelled basic-block heat map, ready to render.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockHeat {
    labels: Vec<String>,
    lengths: Vec<u64>,
    entries: Vec<u64>,
    instructions: Vec<u64>,
    edges: BTreeMap<(u32, u32), u64>,
}

impl BlockHeat {
    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.labels.len()
    }

    /// Per-block entry counts.
    pub fn entries(&self) -> &[u64] {
        &self.entries
    }

    /// Per-block retired-instruction counts.
    pub fn instructions(&self) -> &[u64] {
        &self.instructions
    }

    /// The display label of block `b`.
    pub fn label(&self, b: usize) -> &str {
        &self.labels[b]
    }

    /// Total instructions across all blocks.
    pub fn total_instructions(&self) -> u64 {
        self.instructions.iter().sum()
    }

    /// Renders the heat map as a fixed-width table, hottest block first
    /// (ties broken by block index so output is fully deterministic).
    /// `static_len` columns expose loop redundancy: instructions far above
    /// `entries x length` mean the block re-executes inside one packet.
    pub fn render_table(&self) -> String {
        let total = self.total_instructions().max(1) as f64;
        let mut order: Vec<usize> = (0..self.num_blocks()).collect();
        order.sort_by_key(|&b| (std::cmp::Reverse(self.instructions[b]), b));
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<6} {:<8} {:>8} {:>12} {:>14} {:>7}",
            "block", "label", "length", "entries", "instructions", "share"
        );
        for b in order {
            if self.instructions[b] == 0 && self.entries[b] == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{:<6} {:<8} {:>8} {:>12} {:>14} {:>6.2}%",
                b,
                self.labels[b],
                self.lengths[b],
                self.entries[b],
                self.instructions[b],
                self.instructions[b] as f64 / total * 100.0
            );
        }
        out
    }

    /// Renders the heat map as flamegraph-collapsed text: one
    /// `app;label count` line per executed block, weight = instructions
    /// retired in the block. Feed to any flamegraph renderer.
    pub fn render_collapsed(&self, app: &str) -> String {
        let mut out = String::new();
        for b in 0..self.num_blocks() {
            if self.instructions[b] > 0 {
                let _ = writeln!(out, "{app};{} {}", self.labels[b], self.instructions[b]);
            }
        }
        out
    }

    /// Block-to-successor transition counts, keyed `(from, to)`.
    pub fn edges(&self) -> &BTreeMap<(u32, u32), u64> {
        &self.edges
    }

    /// Renders the hottest block-to-successor edges as a fixed-width
    /// table, most-travelled first (ties broken by `(from, to)` block
    /// ids so output is fully deterministic). These counts are what
    /// hot-trace formation selects chains from; a near-100% share on an
    /// edge means the pair fuses into one trace.
    pub fn render_edges(&self, limit: usize) -> String {
        let total: u64 = self.edges.values().sum();
        let total = total.max(1) as f64;
        let mut order: Vec<(&(u32, u32), &u64)> = self.edges.iter().collect();
        order.sort_by_key(|&(edge, count)| (std::cmp::Reverse(*count), *edge));
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<6} {:<8} {:>6} {:<8} {:>12} {:>7}",
            "from", "label", "to", "label", "count", "share"
        );
        for (&(from, to), &count) in order.into_iter().take(limit) {
            let _ = writeln!(
                out,
                "{:<6} {:<8} {:>6} {:<8} {:>12} {:>6.2}%",
                from,
                self.labels[from as usize],
                to,
                self.labels[to as usize],
                count,
                count as f64 / total * 100.0
            );
        }
        out
    }

    /// Renders dominant block chains as flamegraph-collapsed text: from
    /// each block (hottest first) not yet claimed by a chain, follow the
    /// most-travelled outgoing edge (ties broken by successor id),
    /// stopping after the first already-claimed block (a repeated frame
    /// for self-loops, a join frame otherwise), then emit one
    /// `app;label;label;... count` line weighted by the chain's weakest
    /// edge. This is a rendering of the greedy walk trace formation
    /// performs, so the flamegraph shows the chains the trace engine
    /// fuses.
    pub fn render_chains(&self, app: &str) -> String {
        let n = self.num_blocks();
        // Dominant successor per block, by (count desc, successor id).
        let mut best: Vec<Option<(u32, u64)>> = vec![None; n];
        for (&(from, to), &count) in &self.edges {
            let slot = &mut best[from as usize];
            let better = match *slot {
                None => true,
                Some((bt, bc)) => count > bc || (count == bc && to < bt),
            };
            if better {
                *slot = Some((to, count));
            }
        }
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&b| (std::cmp::Reverse(self.instructions[b]), b));
        let mut claimed = vec![false; n];
        let mut out = String::new();
        for head in order {
            if claimed[head] || self.entries[head] == 0 {
                continue;
            }
            claimed[head] = true;
            let mut frames = vec![self.labels[head].as_str()];
            let mut weight = u64::MAX;
            let mut cur = head;
            while let Some((next, count)) = best[cur] {
                weight = weight.min(count);
                frames.push(self.labels[next as usize].as_str());
                // A block already claimed (including `head` itself, for
                // self-loops) ends the chain as a terminal frame showing
                // where this chain joins a hotter one.
                if claimed[next as usize] {
                    break;
                }
                claimed[next as usize] = true;
                cur = next as usize;
            }
            if frames.len() < 2 {
                continue;
            }
            let _ = writeln!(out, "{app};{} {}", frames.join(";"), weight);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npsim::isa::{reg, Inst, Op};
    use npsim::{Cpu, Memory, MemoryMap, RunConfig, RunStats};

    fn looped_program(map: MemoryMap) -> Program {
        // b0: init | b1 (L*): loop body of 2 insts x5 | b2: ret
        Program::new(
            vec![
                Inst::with_imm(Op::Addi, reg::T0, reg::ZERO, 0),
                Inst::with_imm(Op::Addi, reg::T1, reg::ZERO, 5),
                Inst::with_imm(Op::Addi, reg::T0, reg::T0, 1), // loop leader
                Inst::branch(Op::Blt, reg::T0, reg::T1, -8),
                Inst::jr(reg::RA),
            ],
            map.text_base,
        )
    }

    fn run_heat(runs: usize) -> (HeatObserver, Program, BlockMap) {
        let map = MemoryMap::default();
        let program = looped_program(map);
        let blocks = BlockMap::build(&program);
        let mut obs = HeatObserver::new(&blocks);
        for _ in 0..runs {
            let mut mem = Memory::new();
            let mut cpu = Cpu::new(&program, map);
            let mut stats = RunStats::for_program(program.len());
            cpu.run_observed(
                &mut mem,
                &RunConfig::default(),
                &mut npsim::cpu::NoSys,
                &mut stats,
                &mut obs,
            )
            .unwrap();
        }
        (obs, program, blocks)
    }

    #[test]
    fn loop_block_heat_counts_every_iteration() {
        let (obs, _, blocks) = run_heat(1);
        assert_eq!(blocks.num_blocks(), 3);
        // Entry block once, loop block 5 times, return once.
        assert_eq!(obs.entries(), &[1, 5, 1]);
        // 2 init + 5 x (addi + blt) + 1 ret.
        assert_eq!(obs.instructions(), &[2, 10, 1]);
        assert_eq!(obs.total_instructions(), 13);
    }

    #[test]
    fn runs_reset_block_tracking() {
        let (obs, _, _) = run_heat(3);
        // Without the on_run_start reset the second run's entry block
        // would not count as an entry (prev would still point at it).
        assert_eq!(obs.entries(), &[3, 15, 3]);
    }

    #[test]
    fn merge_is_additive() {
        let (mut a, program, blocks) = run_heat(2);
        let (b, _, _) = run_heat(3);
        a.merge(&b);
        let (whole, _, _) = run_heat(5);
        assert_eq!(a.entries(), whole.entries());
        assert_eq!(a.instructions(), whole.instructions());
        let heat = a.into_heat(&program, &blocks);
        assert_eq!(heat.total_instructions(), whole.total_instructions());
    }

    #[test]
    fn labels_use_disassembler_targets() {
        let (obs, program, blocks) = run_heat(1);
        let heat = obs.into_heat(&program, &blocks);
        // The loop head is a branch target: it gets an L-label; entry and
        // return blocks are not targets and fall back to b<i>.
        assert_eq!(heat.label(0), "b0");
        assert_eq!(heat.label(1), "L0");
        assert_eq!(heat.label(2), "b2");
    }

    #[test]
    fn edges_count_transitions_identically_on_both_loops() {
        let (obs, program, blocks) = run_heat(1);
        // b0 -> L0 once, L0 -> L0 four times, L0 -> b2 once.
        assert_eq!(obs.edges().get(&(0, 1)), Some(&1));
        assert_eq!(obs.edges().get(&(1, 1)), Some(&4));
        assert_eq!(obs.edges().get(&(1, 2)), Some(&1));
        assert_eq!(obs.edges().len(), 3);
        let heat = obs.into_heat(&program, &blocks);
        // Hottest edge first: the loop's self-edge.
        let edges = heat.render_edges(10);
        let first = edges.lines().nth(1).unwrap();
        assert!(first.contains("L0") && first.contains('4'), "{edges}");
        // The dominant chain is the self-looping loop head.
        let chains = heat.render_chains("demo");
        assert_eq!(chains, "demo;L0;L0 4\ndemo;b0;L0 1\n");
    }

    #[test]
    fn edge_merge_is_additive() {
        let (mut a, _, _) = run_heat(2);
        let (b, _, _) = run_heat(3);
        a.merge(&b);
        let (whole, _, _) = run_heat(5);
        assert_eq!(a.edges(), whole.edges());
    }

    #[test]
    fn table_ranks_hottest_first_and_collapsed_lines_weigh_instructions() {
        let (obs, program, blocks) = run_heat(1);
        let heat = obs.into_heat(&program, &blocks);
        let table = heat.render_table();
        let first_data_line = table.lines().nth(1).unwrap();
        assert!(first_data_line.starts_with('1'), "{table}");
        assert!(table.contains("L0"));
        let collapsed = heat.render_collapsed("demo");
        assert_eq!(collapsed, "demo;b0 2\ndemo;L0 10\ndemo;b2 1\n");
    }
}
