//! # npobs — zero-cost instrumentation for PacketBench
//!
//! The paper's contribution is *observability of packet processing*:
//! per-packet instruction counts, packet vs. non-packet memory accesses,
//! and basic-block behaviour. `npobs` makes that visible at runtime
//! instead of only in end-of-run aggregate tables:
//!
//! * [`Log2Histogram`] / [`PacketHists`] — streaming log2-bucketed
//!   distributions of per-packet instructions, region-split memory
//!   accesses, and basic blocks, O(1) per packet and O(65 buckets) of
//!   state no matter how long the trace runs;
//! * [`HeatObserver`] — an [`npsim::Observer`] that rides the interpreter
//!   loops and counts, per static basic block, how often the block is
//!   entered and how many instructions retire inside it. [`BlockHeat`]
//!   renders the result as a table or flamegraph-collapsed text keyed by
//!   the same `L<n>` labels `pb disasm` shows;
//! * [`export`] — a metrics document with JSON and Prometheus
//!   text-format serializers;
//! * [`timeline`] — an in-flight telemetry sampler: per-lane bounded
//!   rings of timestamped counter snapshots plus stage-span tracing,
//!   exported as stamped JSON/CSV time series or a Perfetto-loadable
//!   Chrome trace. A logical clock keyed on global packet order makes
//!   `--deterministic` timelines byte-identical at any thread count;
//! * [`status`] — the shared rate-limited stderr line writer that keeps
//!   progress, memoization, and `--watch` output from interleaving;
//! * [`stamp`] — schema version, git commit, and ISO-8601 timestamps so
//!   metrics and benchmark artifacts are traceable across PRs.
//!
//! The instrumentation is *zero-cost when off*: every hook is
//! monomorphized through the `Observer` type parameter of the `npsim`
//! interpreter loops, so the no-op observer compiles to exactly the
//! uninstrumented loops (guarded by the throughput benchmark).

pub mod export;
pub mod heat;
pub mod hist;
pub mod stamp;
pub mod status;
pub mod timeline;

pub use export::{MetricsDoc, RingDoc};
pub use heat::{BlockHeat, HeatObserver};
pub use hist::{Log2Histogram, PacketHists};
pub use stamp::Stamp;
pub use status::StatusLine;
pub use timeline::{
    Counters, LogicalSeries, Sample, Span, SpanLog, Stage, Timeline, TimelineSpec, WallSampler,
};
