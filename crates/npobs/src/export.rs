//! Metrics exporters: hand-rolled JSON and Prometheus text format.
//!
//! A [`MetricsDoc`] bundles one profiling run — per-packet histograms,
//! per-worker engine telemetry, run timing — behind a [`Stamp`]. The
//! serializers are deliberately dependency-free (the workspace carries no
//! external crates): field order is fixed, maps are emitted in stable
//! order, and floats are printed through one helper, so two documents
//! with equal contents serialize to identical bytes. That byte-stability
//! is what lets CI diff exports against golden fixtures.

use crate::hist::{Log2Histogram, PacketHists};
use crate::stamp::Stamp;
use std::fmt::Write as _;

/// One engine worker's telemetry for a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerStat {
    /// Worker index (0-based).
    pub worker: usize,
    /// Packets this worker processed.
    pub packets: u64,
    /// Nanoseconds spent executing packets.
    pub busy_ns: u64,
    /// Nanoseconds of the run wall-clock this worker was not executing.
    pub idle_ns: u64,
    /// Packets that were queued to this worker's shard.
    pub queue_depth: u64,
    /// Packets answered from the worker's flow-memoization cache
    /// (simulation skipped). Zero when memoization is off.
    pub memo_hits: u64,
    /// Packets that missed the memoization cache and were simulated.
    /// Zero when memoization is off.
    pub memo_misses: u64,
    /// Memoization cache entries displaced by a colliding key. Zero when
    /// memoization is off.
    pub memo_evictions: u64,
    /// Superblock executions that bailed back to single-step execution
    /// (early exit mid-block). Zero when block-level dispatch is off or
    /// every packet was answered from the memoization cache.
    pub block_bailouts: u64,
    /// Hot traces formed by the worker's one-shot formation pass. Zero
    /// until warm-up completes and on paths without the trace layer.
    pub traces_formed: u64,
    /// Complete trips through formed traces (one fused delta each).
    pub trace_hits: u64,
    /// Trips that fell off mid-trace on a mispredicted guard.
    pub trace_guard_exits: u64,
    /// Trace dispatches declined for instruction-budget risk.
    pub trace_declines: u64,
    /// Packets dropped at this worker's live-ingestion ring because the
    /// pool was exhausted. Zero outside `pb live` (batch and stream
    /// modes apply backpressure instead of dropping).
    pub ring_dropped: u64,
}

/// Live-ingestion ring telemetry for one `pb live` run: the exact
/// offered/dropped/retired accounting plus occupancy and burst-size
/// distributions. Absent (`None` in [`MetricsDoc::ring`]) for batch and
/// stream runs, which have no ring.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RingDoc {
    /// Packets offered to the rings (accepted or dropped).
    pub produced: u64,
    /// Packets dropped because a lane's pool was exhausted.
    pub dropped: u64,
    /// Packets processed and recycled. `produced == dropped + retired`
    /// holds exactly after a completed run.
    pub retired: u64,
    /// Distribution of ring occupancy observed at each burst dequeue.
    pub occupancy: Log2Histogram,
    /// Distribution of burst sizes actually dequeued.
    pub bursts: Log2Histogram,
}

/// A complete, exportable metrics document for one profiling run.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsDoc {
    /// Provenance (schema version, commit, timestamp).
    pub stamp: Stamp,
    /// Application slug (`radix`, `trie`, ...).
    pub app: String,
    /// Trace profile slug (`mra`, ...).
    pub trace: String,
    /// Packets profiled.
    pub packets: u64,
    /// Engine worker threads used.
    pub threads: usize,
    /// Total wall-clock nanoseconds for the run (0 in deterministic mode).
    pub elapsed_ns: u64,
    /// Nanoseconds spent merging worker results (0 in deterministic mode).
    pub merge_ns: u64,
    /// Per-packet distributions.
    pub hists: PacketHists,
    /// Per-worker telemetry, ordered by worker index.
    pub workers: Vec<WorkerStat>,
    /// Live-ingestion ring telemetry (`pb live` runs only).
    pub ring: Option<RingDoc>,
}

/// Escapes a value for use inside a Prometheus label: backslash, double
/// quote, and newline must be backslash-escaped per the text exposition
/// format. Application and trace slugs are normally tame, but nothing
/// upstream *enforces* that, and a malformed label silently corrupts
/// every series that carries it.
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Prints an `f64` the same way on every platform (shortest roundtrip
/// via `{:?}`, which Rust guarantees re-parses exactly).
fn fmt_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v:?}")
    }
}

fn json_hist(out: &mut String, indent: &str, name: &str, h: &Log2Histogram, last: bool) {
    let _ = write!(out, "{indent}\"{name}\": {{");
    let _ = write!(
        out,
        "\"count\": {}, \"min\": {}, \"max\": {}, \"mean\": {}, \"buckets\": [",
        h.count(),
        h.min().unwrap_or(0),
        h.max().unwrap_or(0),
        fmt_f64(h.mean())
    );
    let mut first = true;
    for (_, lo, hi, count) in h.iter_nonzero() {
        if !first {
            out.push_str(", ");
        }
        first = false;
        let _ = write!(out, "{{\"lo\": {lo}, \"hi\": {hi}, \"count\": {count}}}");
    }
    out.push_str("]}");
    if !last {
        out.push(',');
    }
    out.push('\n');
}

impl MetricsDoc {
    /// Serializes the document as JSON. Stable field order, no external
    /// dependencies; equal documents produce identical bytes.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  {},", self.stamp.json_fields());
        let _ = writeln!(out, "  \"app\": \"{}\",", self.app);
        let _ = writeln!(out, "  \"trace\": \"{}\",", self.trace);
        let _ = writeln!(out, "  \"packets\": {},", self.packets);
        let _ = writeln!(out, "  \"threads\": {},", self.threads);
        let _ = writeln!(out, "  \"elapsed_ns\": {},", self.elapsed_ns);
        let _ = writeln!(out, "  \"merge_ns\": {},", self.merge_ns);
        out.push_str("  \"histograms\": {\n");
        let hists: Vec<_> = self.hists.iter().collect();
        for (i, (name, h)) in hists.iter().enumerate() {
            json_hist(&mut out, "    ", name, h, i + 1 == hists.len());
        }
        out.push_str("  },\n");
        out.push_str("  \"workers\": [\n");
        for (i, w) in self.workers.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"worker\": {}, \"packets\": {}, \"busy_ns\": {}, \
                 \"idle_ns\": {}, \"queue_depth\": {}, \"memo_hits\": {}, \
                 \"memo_misses\": {}, \"memo_evictions\": {}, \
                 \"block_bailouts\": {}, \"traces_formed\": {}, \
                 \"trace_hits\": {}, \"trace_guard_exits\": {}, \
                 \"trace_declines\": {}, \"ring_dropped\": {}}}",
                w.worker,
                w.packets,
                w.busy_ns,
                w.idle_ns,
                w.queue_depth,
                w.memo_hits,
                w.memo_misses,
                w.memo_evictions,
                w.block_bailouts,
                w.traces_formed,
                w.trace_hits,
                w.trace_guard_exits,
                w.trace_declines,
                w.ring_dropped
            );
            out.push_str(if i + 1 == self.workers.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        out.push_str("  ],\n");
        match &self.ring {
            None => out.push_str("  \"ring\": null\n"),
            Some(ring) => {
                out.push_str("  \"ring\": {\n");
                let _ = writeln!(out, "    \"produced\": {},", ring.produced);
                let _ = writeln!(out, "    \"dropped\": {},", ring.dropped);
                let _ = writeln!(out, "    \"retired\": {},", ring.retired);
                json_hist(&mut out, "    ", "occupancy", &ring.occupancy, false);
                json_hist(&mut out, "    ", "bursts", &ring.bursts, true);
                out.push_str("  }\n");
            }
        }
        out.push_str("}\n");
        out
    }

    /// Serializes the document in Prometheus text exposition format.
    /// Histograms follow the Prometheus convention: cumulative `_bucket`
    /// series with an `le` upper bound, plus `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        let labels = format!(
            "app=\"{}\",trace=\"{}\"",
            escape_label(&self.app),
            escape_label(&self.trace)
        );
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# HELP pb_build_info Build and schema provenance of this export."
        );
        let _ = writeln!(out, "# TYPE pb_build_info gauge");
        let _ = writeln!(
            out,
            "pb_build_info{{schema_version=\"{}\",git_commit=\"{}\"}} 1",
            self.stamp.schema_version, self.stamp.git_commit
        );
        let _ = writeln!(out, "# HELP pb_packets_total Packets profiled.");
        let _ = writeln!(out, "# TYPE pb_packets_total counter");
        let _ = writeln!(out, "pb_packets_total{{{labels}}} {}", self.packets);
        let _ = writeln!(out, "# HELP pb_run_elapsed_ns Run wall-clock time.");
        let _ = writeln!(out, "# TYPE pb_run_elapsed_ns gauge");
        let _ = writeln!(out, "pb_run_elapsed_ns{{{labels}}} {}", self.elapsed_ns);
        let _ = writeln!(out, "# HELP pb_merge_ns Worker result merge time.");
        let _ = writeln!(out, "# TYPE pb_merge_ns gauge");
        let _ = writeln!(out, "pb_merge_ns{{{labels}}} {}", self.merge_ns);
        for (name, h) in self.hists.iter() {
            let metric = format!("pb_{name}");
            let _ = writeln!(out, "# HELP {metric} Per-packet distribution.");
            let _ = writeln!(out, "# TYPE {metric} histogram");
            let mut cum = 0u64;
            for (_, _, hi, count) in h.iter_nonzero() {
                cum += count;
                let _ = writeln!(out, "{metric}_bucket{{{labels},le=\"{hi}\"}} {cum}");
            }
            let _ = writeln!(out, "{metric}_bucket{{{labels},le=\"+Inf\"}} {cum}");
            let _ = writeln!(
                out,
                "{metric}_sum{{{labels}}} {}",
                fmt_f64(h.mean() * h.count() as f64)
            );
            let _ = writeln!(out, "{metric}_count{{{labels}}} {}", h.count());
        }
        let _ = writeln!(
            out,
            "# HELP pb_worker_packets_total Packets per engine worker."
        );
        let _ = writeln!(out, "# TYPE pb_worker_packets_total counter");
        for w in &self.workers {
            let _ = writeln!(
                out,
                "pb_worker_packets_total{{{labels},worker=\"{}\"}} {}",
                w.worker, w.packets
            );
        }
        let _ = writeln!(out, "# HELP pb_worker_busy_ns Busy time per engine worker.");
        let _ = writeln!(out, "# TYPE pb_worker_busy_ns gauge");
        for w in &self.workers {
            let _ = writeln!(
                out,
                "pb_worker_busy_ns{{{labels},worker=\"{}\"}} {}",
                w.worker, w.busy_ns
            );
        }
        let _ = writeln!(out, "# HELP pb_worker_idle_ns Idle time per engine worker.");
        let _ = writeln!(out, "# TYPE pb_worker_idle_ns gauge");
        for w in &self.workers {
            let _ = writeln!(
                out,
                "pb_worker_idle_ns{{{labels},worker=\"{}\"}} {}",
                w.worker, w.idle_ns
            );
        }
        let _ = writeln!(
            out,
            "# HELP pb_worker_queue_depth Packets queued to each worker's shard."
        );
        let _ = writeln!(out, "# TYPE pb_worker_queue_depth gauge");
        for w in &self.workers {
            let _ = writeln!(
                out,
                "pb_worker_queue_depth{{{labels},worker=\"{}\"}} {}",
                w.worker, w.queue_depth
            );
        }
        let _ = writeln!(
            out,
            "# HELP pb_worker_memo_hits_total Packets answered from the worker's \
             flow-memoization cache."
        );
        let _ = writeln!(out, "# TYPE pb_worker_memo_hits_total counter");
        for w in &self.workers {
            let _ = writeln!(
                out,
                "pb_worker_memo_hits_total{{{labels},worker=\"{}\"}} {}",
                w.worker, w.memo_hits
            );
        }
        let _ = writeln!(
            out,
            "# HELP pb_worker_memo_misses_total Packets that missed the memoization \
             cache and were simulated."
        );
        let _ = writeln!(out, "# TYPE pb_worker_memo_misses_total counter");
        for w in &self.workers {
            let _ = writeln!(
                out,
                "pb_worker_memo_misses_total{{{labels},worker=\"{}\"}} {}",
                w.worker, w.memo_misses
            );
        }
        let _ = writeln!(
            out,
            "# HELP pb_worker_memo_evictions_total Memoization cache entries displaced \
             by a colliding key."
        );
        let _ = writeln!(out, "# TYPE pb_worker_memo_evictions_total counter");
        for w in &self.workers {
            let _ = writeln!(
                out,
                "pb_worker_memo_evictions_total{{{labels},worker=\"{}\"}} {}",
                w.worker, w.memo_evictions
            );
        }
        let _ = writeln!(
            out,
            "# HELP pb_worker_block_bailouts_total Superblock executions that bailed \
             back to single-step execution."
        );
        let _ = writeln!(out, "# TYPE pb_worker_block_bailouts_total counter");
        for w in &self.workers {
            let _ = writeln!(
                out,
                "pb_worker_block_bailouts_total{{{labels},worker=\"{}\"}} {}",
                w.worker, w.block_bailouts
            );
        }
        let _ = writeln!(
            out,
            "# HELP pb_trace_formed_total Hot traces formed by the one-shot \
             formation pass."
        );
        let _ = writeln!(out, "# TYPE pb_trace_formed_total counter");
        for w in &self.workers {
            let _ = writeln!(
                out,
                "pb_trace_formed_total{{{labels},worker=\"{}\"}} {}",
                w.worker, w.traces_formed
            );
        }
        let _ = writeln!(
            out,
            "# HELP pb_trace_hits_total Complete trips through formed traces \
             (one fused delta each)."
        );
        let _ = writeln!(out, "# TYPE pb_trace_hits_total counter");
        for w in &self.workers {
            let _ = writeln!(
                out,
                "pb_trace_hits_total{{{labels},worker=\"{}\"}} {}",
                w.worker, w.trace_hits
            );
        }
        let _ = writeln!(
            out,
            "# HELP pb_trace_guard_exits_total Trips that fell off mid-trace \
             on a mispredicted guard."
        );
        let _ = writeln!(out, "# TYPE pb_trace_guard_exits_total counter");
        for w in &self.workers {
            let _ = writeln!(
                out,
                "pb_trace_guard_exits_total{{{labels},worker=\"{}\"}} {}",
                w.worker, w.trace_guard_exits
            );
        }
        let _ = writeln!(
            out,
            "# HELP pb_trace_declines_total Trace dispatches declined for \
             instruction-budget risk."
        );
        let _ = writeln!(out, "# TYPE pb_trace_declines_total counter");
        for w in &self.workers {
            let _ = writeln!(
                out,
                "pb_trace_declines_total{{{labels},worker=\"{}\"}} {}",
                w.worker, w.trace_declines
            );
        }
        if let Some(ring) = &self.ring {
            let _ = writeln!(
                out,
                "# HELP pb_ring_produced_total Packets offered to the live-ingestion rings."
            );
            let _ = writeln!(out, "# TYPE pb_ring_produced_total counter");
            let _ = writeln!(out, "pb_ring_produced_total{{{labels}}} {}", ring.produced);
            let _ = writeln!(
                out,
                "# HELP pb_ring_dropped_total Packets dropped because a ring's pool was \
                 exhausted."
            );
            let _ = writeln!(out, "# TYPE pb_ring_dropped_total counter");
            let _ = writeln!(out, "pb_ring_dropped_total{{{labels}}} {}", ring.dropped);
            let _ = writeln!(
                out,
                "# HELP pb_ring_retired_total Packets processed and recycled to the pool."
            );
            let _ = writeln!(out, "# TYPE pb_ring_retired_total counter");
            let _ = writeln!(out, "pb_ring_retired_total{{{labels}}} {}", ring.retired);
            let _ = writeln!(
                out,
                "# HELP pb_worker_ring_dropped_total Ring-ingestion drops per worker lane."
            );
            let _ = writeln!(out, "# TYPE pb_worker_ring_dropped_total counter");
            for w in &self.workers {
                let _ = writeln!(
                    out,
                    "pb_worker_ring_dropped_total{{{labels},worker=\"{}\"}} {}",
                    w.worker, w.ring_dropped
                );
            }
            for (name, h) in [
                ("pb_ring_occupancy", &ring.occupancy),
                ("pb_ring_burst_size", &ring.bursts),
            ] {
                let _ = writeln!(
                    out,
                    "# HELP {name} Distribution observed at each burst dequeue."
                );
                let _ = writeln!(out, "# TYPE {name} histogram");
                let mut cum = 0u64;
                for (_, _, hi, count) in h.iter_nonzero() {
                    cum += count;
                    let _ = writeln!(out, "{name}_bucket{{{labels},le=\"{hi}\"}} {cum}");
                }
                let _ = writeln!(out, "{name}_bucket{{{labels},le=\"+Inf\"}} {cum}");
                let _ = writeln!(
                    out,
                    "{name}_sum{{{labels}}} {}",
                    fmt_f64(h.mean() * h.count() as f64)
                );
                let _ = writeln!(out, "{name}_count{{{labels}}} {}", h.count());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stamp::{Stamp, METRICS_SCHEMA_VERSION};

    fn sample_doc() -> MetricsDoc {
        let mut hists = PacketHists::new();
        hists.record(100, 10, 20, 5);
        hists.record(200, 12, 24, 6);
        hists.record(150, 11, 22, 5);
        MetricsDoc {
            stamp: Stamp::deterministic(METRICS_SCHEMA_VERSION),
            app: "radix".to_string(),
            trace: "mra".to_string(),
            packets: 3,
            threads: 2,
            elapsed_ns: 0,
            merge_ns: 0,
            hists,
            workers: vec![
                WorkerStat {
                    worker: 0,
                    packets: 2,
                    busy_ns: 0,
                    idle_ns: 0,
                    queue_depth: 2,
                    memo_hits: 1,
                    memo_misses: 1,
                    memo_evictions: 0,
                    block_bailouts: 4,
                    traces_formed: 2,
                    trace_hits: 9,
                    trace_guard_exits: 3,
                    trace_declines: 1,
                    ring_dropped: 0,
                },
                WorkerStat {
                    worker: 1,
                    packets: 1,
                    busy_ns: 0,
                    idle_ns: 0,
                    queue_depth: 1,
                    ..WorkerStat::default()
                },
            ],
            ring: None,
        }
    }

    #[test]
    fn json_is_stable_and_structured() {
        let doc = sample_doc();
        let a = doc.to_json();
        let b = doc.clone().to_json();
        assert_eq!(a, b);
        assert!(a.contains(&format!("\"schema_version\": {METRICS_SCHEMA_VERSION}")));
        assert!(a.contains("\"app\": \"radix\""));
        assert!(a.contains("\"instructions_per_packet\""));
        assert!(a.contains("{\"lo\": 128, \"hi\": 255, \"count\": 2}"));
        assert!(a.contains("\"worker\": 1, \"packets\": 1"));
        assert!(a.contains(
            "\"memo_hits\": 1, \"memo_misses\": 1, \"memo_evictions\": 0, \"block_bailouts\": 4"
        ));
        // Crude balance check on the hand-rolled writer.
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert_eq!(a.matches('[').count(), a.matches(']').count());
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let doc = sample_doc();
        let prom = doc.to_prometheus();
        // 100 falls in [64,127], 150 and 200 in [128,255].
        assert!(prom.contains(
            "pb_instructions_per_packet_bucket{app=\"radix\",trace=\"mra\",le=\"127\"} 1"
        ));
        assert!(prom.contains(
            "pb_instructions_per_packet_bucket{app=\"radix\",trace=\"mra\",le=\"255\"} 3"
        ));
        assert!(prom.contains(
            "pb_instructions_per_packet_bucket{app=\"radix\",trace=\"mra\",le=\"+Inf\"} 3"
        ));
        assert!(prom.contains("pb_instructions_per_packet_sum{app=\"radix\",trace=\"mra\"} 450.0"));
        assert!(prom.contains("pb_instructions_per_packet_count{app=\"radix\",trace=\"mra\"} 3"));
        assert!(
            prom.contains("pb_worker_packets_total{app=\"radix\",trace=\"mra\",worker=\"0\"} 2")
        );
        assert!(prom.contains(&format!(
            "pb_build_info{{schema_version=\"{METRICS_SCHEMA_VERSION}\",git_commit=\"deterministic\"}} 1"
        )));
        assert!(
            prom.contains("pb_worker_memo_hits_total{app=\"radix\",trace=\"mra\",worker=\"0\"} 1")
        );
        assert!(prom
            .contains("pb_worker_memo_misses_total{app=\"radix\",trace=\"mra\",worker=\"1\"} 0"));
    }

    #[test]
    fn empty_histograms_export_cleanly() {
        let mut doc = sample_doc();
        doc.hists = PacketHists::new();
        doc.workers.clear();
        doc.packets = 0;
        let json = doc.to_json();
        assert!(json.contains("\"buckets\": []"));
        let prom = doc.to_prometheus();
        assert!(prom.contains(
            "pb_instructions_per_packet_bucket{app=\"radix\",trace=\"mra\",le=\"+Inf\"} 0"
        ));
    }

    #[test]
    fn empty_worker_set_keeps_metadata_but_emits_no_series() {
        let mut doc = sample_doc();
        doc.workers.clear();
        let json = doc.to_json();
        // The workers array must still be present (and balanced) even
        // with no elements.
        assert!(json.contains("\"workers\": [\n  ]"));
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let prom = doc.to_prometheus();
        // HELP/TYPE headers stay (scrapers key on them) but no per-worker
        // sample lines follow.
        assert!(prom.contains("# TYPE pb_worker_packets_total counter"));
        assert!(!prom.contains("pb_worker_packets_total{app="));
        assert!(!prom.contains("pb_worker_block_bailouts_total{app="));
    }

    #[test]
    fn prometheus_labels_are_escaped() {
        assert_eq!(escape_label("radix"), "radix");
        assert_eq!(escape_label("a\"b"), "a\\\"b");
        assert_eq!(escape_label("a\\b"), "a\\\\b");
        assert_eq!(escape_label("a\nb"), "a\\nb");
        let mut doc = sample_doc();
        doc.trace = "m\"ra\\x\n".to_string();
        let prom = doc.to_prometheus();
        assert!(prom.contains("trace=\"m\\\"ra\\\\x\\n\""));
        // No raw newline may survive inside a label value: every line
        // either is a comment or ends in a sample value.
        for line in prom.lines() {
            assert!(
                line.starts_with('#') || line.ends_with(|c: char| c.is_ascii_digit()),
                "malformed exposition line: {line:?}"
            );
        }
    }

    #[test]
    fn schema_version_four_covers_trace_telemetry() {
        // v2 grew `block_bailouts`; v3 grew per-worker `ring_dropped`
        // and the optional `ring` section; v4 grew the trace-cache
        // counters. All are consumer-visible schema changes: the stamp
        // must say so.
        assert_eq!(METRICS_SCHEMA_VERSION, 4);
        let doc = sample_doc();
        assert_eq!(doc.stamp.schema_version, METRICS_SCHEMA_VERSION);
        let json = doc.to_json();
        assert!(json.contains("\"block_bailouts\""));
        assert!(json.contains(
            "\"traces_formed\": 2, \"trace_hits\": 9, \
             \"trace_guard_exits\": 3, \"trace_declines\": 1"
        ));
        assert!(json.contains("\"ring_dropped\": 0"));
        assert!(json.contains("\"ring\": null"));
        let prom = doc.to_prometheus();
        assert!(prom.contains("pb_worker_block_bailouts_total"));
        assert!(prom.contains("pb_trace_formed_total{app=\"radix\",trace=\"mra\",worker=\"0\"} 2"));
        assert!(prom.contains("pb_trace_hits_total{app=\"radix\",trace=\"mra\",worker=\"0\"} 9"));
        assert!(
            prom.contains("pb_trace_guard_exits_total{app=\"radix\",trace=\"mra\",worker=\"0\"} 3")
        );
        assert!(
            prom.contains("pb_trace_declines_total{app=\"radix\",trace=\"mra\",worker=\"1\"} 0")
        );
    }

    #[test]
    fn ring_section_exports_in_both_formats() {
        let mut doc = sample_doc();
        let mut occupancy = Log2Histogram::new();
        let mut bursts = Log2Histogram::new();
        for v in [3u64, 9, 30] {
            occupancy.record(v);
        }
        for v in [8u64, 32, 32] {
            bursts.record(v);
        }
        doc.workers[1].ring_dropped = 7;
        doc.ring = Some(RingDoc {
            produced: 100,
            dropped: 7,
            retired: 93,
            occupancy,
            bursts,
        });
        let json = doc.to_json();
        assert_eq!(json, doc.clone().to_json(), "byte-stable");
        assert!(json.contains("\"produced\": 100"));
        assert!(json.contains("\"dropped\": 7"));
        assert!(json.contains("\"retired\": 93"));
        assert!(json.contains("\"occupancy\""));
        assert!(json.contains("\"bursts\""));
        assert!(json.contains("\"ring_dropped\": 7"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let prom = doc.to_prometheus();
        assert!(prom.contains("pb_ring_dropped_total{app=\"radix\",trace=\"mra\"} 7"));
        assert!(prom.contains("pb_ring_produced_total{app=\"radix\",trace=\"mra\"} 100"));
        assert!(prom.contains("pb_ring_retired_total{app=\"radix\",trace=\"mra\"} 93"));
        assert!(prom
            .contains("pb_worker_ring_dropped_total{app=\"radix\",trace=\"mra\",worker=\"1\"} 7"));
        assert!(prom.contains("pb_ring_occupancy_bucket"));
        assert!(prom.contains("pb_ring_burst_size_count{app=\"radix\",trace=\"mra\"} 3"));
    }
}
