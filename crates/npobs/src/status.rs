//! A shared, rate-limited status-line writer for stderr.
//!
//! Several parts of a run want to talk on stderr while workers are busy:
//! the engine's periodic `--progress` line, the flow-memoization summary,
//! and the `--watch` live timeline refresh. Each used to call
//! `eprintln!` on its own, which takes the stderr lock per *fragment* —
//! two threads printing at once could interleave mid-line. [`StatusLine`]
//! fixes both problems at once:
//!
//! * every line is formatted into a buffer first and emitted with one
//!   `write_all`, so a line is the atomic unit on the stream;
//! * an internal mutex serializes writers, so concurrent lines queue
//!   instead of shredding each other;
//! * [`StatusLine::emit_throttled`] drops lines arriving faster than the
//!   configured minimum interval, keeping long soaks readable;
//! * when stderr is a terminal, [`StatusLine::refresh`] redraws in place
//!   with `\r` (and clears the tail); when it is a pipe or file, each
//!   refresh becomes an ordinary line so logs stay greppable.

use std::io::{IsTerminal, Write};
use std::sync::Mutex;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Inner {
    /// Last time a throttled emit was let through.
    last: Option<Instant>,
    /// Columns written by the last in-place refresh (for clearing).
    refresh_len: usize,
}

/// A mutex-guarded stderr line writer shared by everything that reports
/// during a run. Cheap to share by reference across scoped threads.
#[derive(Debug)]
pub struct StatusLine {
    inner: Mutex<Inner>,
    min_interval: Duration,
    is_tty: bool,
}

impl Default for StatusLine {
    fn default() -> StatusLine {
        StatusLine::new(Duration::from_millis(200))
    }
}

impl StatusLine {
    /// A writer that lets throttled lines through at most once per
    /// `min_interval`.
    pub fn new(min_interval: Duration) -> StatusLine {
        StatusLine {
            inner: Mutex::new(Inner {
                last: None,
                refresh_len: 0,
            }),
            min_interval,
            is_tty: std::io::stderr().is_terminal(),
        }
    }

    /// Whether stderr is a terminal (refreshes redraw in place).
    pub fn is_tty(&self) -> bool {
        self.is_tty
    }

    /// Writes one complete line, unconditionally. The trailing newline is
    /// added here; `line` must not contain one.
    pub fn emit(&self, line: &str) {
        let mut inner = self.inner.lock().unwrap();
        self.write_line(&mut inner, line);
    }

    /// Writes the line only if at least the minimum interval has passed
    /// since the last throttled write. Returns whether it was written.
    pub fn emit_throttled(&self, line: &str) -> bool {
        let mut inner = self.inner.lock().unwrap();
        let now = Instant::now();
        if let Some(last) = inner.last {
            if now.duration_since(last) < self.min_interval {
                return false;
            }
        }
        inner.last = Some(now);
        self.write_line(&mut inner, line);
        true
    }

    /// Redraws a live status in place (`\r`, no newline) on a terminal;
    /// degrades to a throttled ordinary line otherwise.
    pub fn refresh(&self, line: &str) {
        if !self.is_tty {
            self.emit_throttled(line);
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        let pad = inner.refresh_len.saturating_sub(line.chars().count());
        let mut buf = String::with_capacity(line.len() + pad + 1);
        buf.push('\r');
        buf.push_str(line);
        for _ in 0..pad {
            buf.push(' ');
        }
        inner.refresh_len = line.chars().count();
        let mut err = std::io::stderr().lock();
        let _ = err.write_all(buf.as_bytes());
        let _ = err.flush();
    }

    /// Ends an in-place refresh, moving to a fresh line so subsequent
    /// output does not overwrite the last status.
    pub fn finish_refresh(&self) {
        if !self.is_tty {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        if inner.refresh_len > 0 {
            inner.refresh_len = 0;
            let mut err = std::io::stderr().lock();
            let _ = err.write_all(b"\n");
            let _ = err.flush();
        }
    }

    fn write_line(&self, inner: &mut Inner, line: &str) {
        let mut buf = String::with_capacity(line.len() + 2);
        if self.is_tty && inner.refresh_len > 0 {
            // A full line interrupting an in-place refresh gets its own
            // row; the next refresh redraws below it.
            buf.push('\n');
            inner.refresh_len = 0;
        }
        buf.push_str(line);
        buf.push('\n');
        let mut err = std::io::stderr().lock();
        let _ = err.write_all(buf.as_bytes());
        let _ = err.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throttle_drops_rapid_lines() {
        let status = StatusLine::new(Duration::from_secs(3600));
        assert!(status.emit_throttled("first"));
        assert!(!status.emit_throttled("second"));
        assert!(!status.emit_throttled("third"));
    }

    #[test]
    fn zero_interval_never_drops() {
        let status = StatusLine::new(Duration::ZERO);
        assert!(status.emit_throttled("a"));
        assert!(status.emit_throttled("b"));
    }

    #[test]
    fn unthrottled_emit_does_not_consume_the_budget() {
        let status = StatusLine::new(Duration::from_secs(3600));
        status.emit("always");
        assert!(status.emit_throttled("first throttled"));
    }

    #[test]
    fn shared_across_threads() {
        let status = StatusLine::new(Duration::ZERO);
        std::thread::scope(|s| {
            for i in 0..4 {
                let status = &status;
                s.spawn(move || {
                    for j in 0..10 {
                        status.emit(&format!("worker {i} line {j}"));
                    }
                });
            }
        });
    }
}
