//! Seeded property tests: every observability merge is associative and
//! order-invariant.
//!
//! The engine merges worker-private observers in worker-index order; the
//! streaming pipeline merges per-chunk aggregates in chunk flush order.
//! Both depend on merges being exact folds where grouping and order
//! cannot matter — these tests drive that with randomized partitions and
//! permutations instead of hand-picked examples.

use nprng::rngs::StdRng;
use nprng::{Rng, SeedableRng};

use npobs::heat::HeatObserver;
use npobs::hist::{Log2Histogram, PacketHists};
use npsim::bblock::BlockMap;
use npsim::isa::{reg, Inst, Op};
use npsim::obs::Observer;
use npsim::{MemoryMap, Program};

/// Samples spread across the full bucket range (top bits vary, then a
/// random right shift mixes magnitudes).
fn arb_samples(rng: &mut StdRng, n: usize) -> Vec<u64> {
    (0..n)
        .map(|_| {
            let shift = rng.gen_range(0u32..64);
            rng.gen::<u64>() >> shift
        })
        .collect()
}

/// Splits `samples` into 2..=5 contiguous (possibly empty) parts.
fn arb_partition(rng: &mut StdRng, samples: &[u64]) -> Vec<Vec<u64>> {
    let parts = rng.gen_range(2usize..6);
    let mut cuts: Vec<usize> = (0..parts - 1)
        .map(|_| rng.gen_range(0..samples.len() + 1))
        .collect();
    cuts.sort_unstable();
    let mut out = Vec::with_capacity(parts);
    let mut prev = 0;
    for cut in cuts {
        out.push(samples[prev..cut].to_vec());
        prev = cut;
    }
    out.push(samples[prev..].to_vec());
    out
}

fn arb_permutation(rng: &mut StdRng, n: usize) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..i + 1);
        perm.swap(i, j);
    }
    perm
}

fn hist_of(samples: &[u64]) -> Log2Histogram {
    let mut h = Log2Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

#[test]
fn log2_histogram_merge_is_associative_and_order_invariant() {
    let mut rng = StdRng::seed_from_u64(0x0b5e_0001);
    for round in 0..200 {
        let n = rng.gen_range(0usize..120);
        let samples = arb_samples(&mut rng, n);
        let parts = arb_partition(&mut rng, &samples);
        let hists: Vec<Log2Histogram> = parts.iter().map(|p| hist_of(p)).collect();
        let whole = hist_of(&samples);

        // Left fold: ((a + b) + c) + ...
        let mut left = Log2Histogram::new();
        for h in &hists {
            left.merge(h);
        }
        assert_eq!(left, whole, "round {round}: left fold");

        // Right fold: a + (b + (c + ...)).
        let mut right = Log2Histogram::new();
        for h in hists.iter().rev() {
            let mut acc = h.clone();
            acc.merge(&right);
            right = acc;
        }
        assert_eq!(right, whole, "round {round}: right fold");

        // Any merge order.
        let perm = arb_permutation(&mut rng, hists.len());
        let mut shuffled = Log2Histogram::new();
        for &i in &perm {
            shuffled.merge(&hists[i]);
        }
        assert_eq!(shuffled, whole, "round {round}: order {perm:?}");
    }
}

#[test]
fn packet_hists_merge_is_associative_and_order_invariant() {
    let mut rng = StdRng::seed_from_u64(0x0b5e_0002);
    for round in 0..100 {
        let n = rng.gen_range(0..80);
        let rows: Vec<[u64; 4]> = (0..n)
            .map(|_| {
                [
                    rng.gen::<u64>() >> rng.gen_range(0u32..64),
                    rng.gen_range(0u64..1 << 20),
                    rng.gen_range(0u64..1 << 20),
                    rng.gen_range(0u64..256),
                ]
            })
            .collect();
        let mut whole = PacketHists::new();
        for r in &rows {
            whole.record(r[0], r[1], r[2], r[3]);
        }

        // Round-robin split into 3 parts, merged in a random order: the
        // streaming merger's situation (parts interleave the trace).
        let mut parts = vec![PacketHists::new(); 3];
        for (i, r) in rows.iter().enumerate() {
            parts[i % 3].record(r[0], r[1], r[2], r[3]);
        }
        let perm = arb_permutation(&mut rng, parts.len());
        let mut merged = PacketHists::new();
        for &i in &perm {
            merged.merge(&parts[i]);
        }
        assert_eq!(merged, whole, "round {round}: order {perm:?}");

        // Associativity: (p0 + p1) + p2 == p0 + (p1 + p2).
        let mut ab_c = parts[0].clone();
        ab_c.merge(&parts[1]);
        ab_c.merge(&parts[2]);
        let mut bc = parts[1].clone();
        bc.merge(&parts[2]);
        let mut a_bc = parts[0].clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "round {round}: associativity");
    }
}

/// A small multi-block program: init, a backward-branch loop body, ret.
fn blocked_program() -> Program {
    let map = MemoryMap::default();
    Program::new(
        vec![
            Inst::with_imm(Op::Addi, reg::T0, reg::ZERO, 0),
            Inst::with_imm(Op::Addi, reg::T1, reg::ZERO, 5),
            Inst::with_imm(Op::Addi, reg::T0, reg::T0, 1),
            Inst::branch(Op::Blt, reg::T0, reg::T1, -8),
            Inst::jr(reg::RA),
        ],
        map.text_base,
    )
}

/// Feeds one simulated "worker shard" into a heat observer: a random
/// number of runs, each a random walk over the program's instructions.
fn feed(obs: &mut HeatObserver, rng: &mut StdRng, len: usize, inst: &Inst) {
    for _ in 0..rng.gen_range(1usize..4) {
        obs.on_run_start();
        for _ in 0..rng.gen_range(0usize..60) {
            obs.on_inst(0, rng.gen_range(0..len), inst);
        }
    }
}

#[test]
fn heat_observer_merge_is_associative_and_order_invariant() {
    let program = blocked_program();
    let blocks = BlockMap::build(&program);
    let inst = Inst::with_imm(Op::Addi, reg::T0, reg::ZERO, 0);
    let mut rng = StdRng::seed_from_u64(0x0b5e_0003);
    for round in 0..60 {
        // The same instruction stream observed as one whole and as
        // independent per-worker parts (each run resets block tracking,
        // so part boundaries are exactly run boundaries — as in the
        // engine, where every packet run starts with on_run_start).
        let seeds: Vec<u64> = (0..rng.gen_range(2usize..5)).map(|_| rng.gen()).collect();
        let mut whole = HeatObserver::new(&blocks);
        let mut parts = Vec::new();
        for &seed in &seeds {
            let mut part_rng = StdRng::seed_from_u64(seed);
            feed(&mut whole, &mut part_rng, program.len(), &inst);
            let mut part = HeatObserver::new(&blocks);
            let mut part_rng = StdRng::seed_from_u64(seed);
            feed(&mut part, &mut part_rng, program.len(), &inst);
            parts.push(part);
        }

        let perm = arb_permutation(&mut rng, parts.len());
        let mut merged = HeatObserver::new(&blocks);
        for &i in &perm {
            merged.merge(&parts[i]);
        }
        assert_eq!(merged.entries(), whole.entries(), "round {round}");
        assert_eq!(merged.instructions(), whole.instructions(), "round {round}");

        // Associativity with explicit groupings over the first three
        // parts (pad by reusing part 0 when only two were drawn).
        let p2 = parts.get(2).unwrap_or(&parts[0]);
        let mut ab_c = parts[0].clone();
        ab_c.merge(&parts[1]);
        ab_c.merge(p2);
        let mut bc = parts[1].clone();
        bc.merge(p2);
        let mut a_bc = parts[0].clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c.entries(), a_bc.entries(), "round {round}");
        assert_eq!(ab_c.instructions(), a_bc.instructions(), "round {round}");
    }
}

#[test]
#[should_panic(expected = "different programs")]
fn heat_merge_rejects_mismatched_programs() {
    let a_prog = blocked_program();
    let map = MemoryMap::default();
    let b_prog = Program::new(
        vec![Inst::with_imm(Op::Addi, reg::T0, reg::ZERO, 0)],
        map.text_base,
    );
    let mut a = HeatObserver::new(&BlockMap::build(&a_prog));
    let b = HeatObserver::new(&BlockMap::build(&b_prog));
    a.merge(&b);
}
