//! Randomized (seeded, deterministic) test: the chained-hash flow table
//! behaves exactly like a `HashMap`-based model under arbitrary packet
//! sequences.

use std::collections::HashMap;

use nprng::rngs::StdRng;
use nprng::{Rng, SeedableRng};

use flowclass::{FlowKey, FlowTable};

/// Keys drawn from a small universe so flows repeat.
fn arb_key(rng: &mut StdRng) -> FlowKey {
    const PROTOCOLS: [u8; 3] = [6, 17, 1];
    FlowKey {
        src: rng.gen_range(0u32..20),
        dst: rng.gen_range(0u32..20),
        src_port: rng.gen_range(0u16..4) * 1000,
        dst_port: rng.gen_range(0u16..4) * 1000,
        protocol: PROTOCOLS[rng.gen_range(0usize..PROTOCOLS.len())],
    }
}

#[test]
fn flow_table_matches_hashmap_model() {
    const BUCKET_CHOICES: [u32; 3] = [1, 4, 64];
    let mut rng = StdRng::seed_from_u64(0x464c_0001);
    for _ in 0..120 {
        let buckets = BUCKET_CHOICES[rng.gen_range(0usize..BUCKET_CHOICES.len())];
        let count = rng.gen_range(0usize..300);
        let mut table = FlowTable::new(buckets, 10_000);
        let mut model: HashMap<FlowKey, (u32, u32)> = HashMap::new();
        for _ in 0..count {
            let key = arb_key(&mut rng);
            let bytes = rng.gen_range(20u32..1500);
            let entry = model.entry(key).or_insert((0, 0));
            entry.0 += 1;
            entry.1 = entry.1.wrapping_add(bytes);
            let got = table.process(key, bytes);
            assert_eq!(got, Some(entry.0));
        }
        assert_eq!(table.flow_count(), model.len());
        for (key, &(packets, bytes)) in &model {
            let state = table.get(key).expect("flow exists");
            assert_eq!(state.packets, packets);
            assert_eq!(state.bytes, bytes);
        }
    }
}

#[test]
fn capacity_limits_are_exact() {
    let mut rng = StdRng::seed_from_u64(0x464c_0002);
    for _ in 0..120 {
        let capacity = rng.gen_range(1usize..5);
        // A set of distinct keys, insertion order preserved.
        let mut keys: Vec<FlowKey> = Vec::new();
        let wanted = rng.gen_range(5usize..30);
        while keys.len() < wanted {
            let key = arb_key(&mut rng);
            if !keys.contains(&key) {
                keys.push(key);
            }
        }
        let mut table = FlowTable::new(16, capacity);
        for (i, key) in keys.iter().enumerate() {
            let got = table.process(*key, 1);
            if i < capacity {
                assert_eq!(got, Some(1));
            } else {
                assert_eq!(got, None);
            }
        }
        assert_eq!(table.flow_count(), capacity.min(keys.len()));
    }
}

#[test]
fn hash_is_stable_and_bucket_in_range() {
    const BUCKET_CHOICES: [u32; 3] = [1, 256, 8192];
    let mut rng = StdRng::seed_from_u64(0x464c_0003);
    for _ in 0..500 {
        let key = arb_key(&mut rng);
        let buckets = BUCKET_CHOICES[rng.gen_range(0usize..BUCKET_CHOICES.len())];
        assert_eq!(key.hash(), key.hash());
        assert!(key.bucket(buckets) < buckets);
    }
}
