//! Property test: the chained-hash flow table behaves exactly like a
//! `HashMap`-based model under arbitrary packet sequences.

use std::collections::HashMap;

use proptest::prelude::*;

use flowclass::{FlowKey, FlowTable};

fn arb_key() -> impl Strategy<Value = FlowKey> {
    // A small universe so flows repeat.
    (0u32..20, 0u32..20, 0u16..4, 0u16..4, prop_oneof![Just(6u8), Just(17u8), Just(1u8)])
        .prop_map(|(src, dst, sp, dp, protocol)| FlowKey {
            src,
            dst,
            src_port: sp * 1000,
            dst_port: dp * 1000,
            protocol,
        })
}

proptest! {
    #[test]
    fn flow_table_matches_hashmap_model(
        packets in proptest::collection::vec((arb_key(), 20u32..1500), 0..300),
        buckets in prop_oneof![Just(1u32), Just(4), Just(64)],
    ) {
        let mut table = FlowTable::new(buckets, 10_000);
        let mut model: HashMap<FlowKey, (u32, u32)> = HashMap::new();
        for (key, bytes) in packets {
            let entry = model.entry(key).or_insert((0, 0));
            entry.0 += 1;
            entry.1 = entry.1.wrapping_add(bytes);
            let got = table.process(key, bytes);
            prop_assert_eq!(got, Some(entry.0));
        }
        prop_assert_eq!(table.flow_count(), model.len());
        for (key, &(packets, bytes)) in &model {
            let state = table.get(key).expect("flow exists");
            prop_assert_eq!(state.packets, packets);
            prop_assert_eq!(state.bytes, bytes);
        }
    }

    #[test]
    fn capacity_limits_are_exact(
        keys in proptest::collection::hash_set(arb_key(), 5..30),
        capacity in 1usize..5,
    ) {
        let mut table = FlowTable::new(16, capacity);
        let keys: Vec<FlowKey> = keys.into_iter().collect();
        for (i, key) in keys.iter().enumerate() {
            let got = table.process(*key, 1);
            if i < capacity {
                prop_assert_eq!(got, Some(1));
            } else {
                prop_assert_eq!(got, None);
            }
        }
        prop_assert_eq!(table.flow_count(), capacity.min(keys.len()));
    }

    #[test]
    fn hash_is_stable_and_bucket_in_range(key in arb_key(), buckets in prop_oneof![Just(1u32), Just(256), Just(8192)]) {
        prop_assert_eq!(key.hash(), key.hash());
        prop_assert!(key.bucket(buckets) < buckets);
    }
}
