//! # flowclass — 5-tuple flow classification
//!
//! The substrate behind the paper's Flow Classification application
//! (§IV-A): packets are classified into flows by the 5-tuple (source and
//! destination address, source and destination port, transport protocol);
//! the tuple hashes into a bucket array and collisions are resolved with
//! linked chains, whose per-flow counters are updated in place.
//!
//! The crate provides the [`FlowTable`] golden model — algorithmically
//! identical, hash included, to what the NP32 assembly application executes
//! — plus [`layout`] for initializing the simulated-memory image that
//! application walks. The paper's observation that memory use *grows with
//! the number of flows in the trace* (unlike the fixed-size routing and
//! anonymization tables) falls straight out of this design.
//!
//! ```
//! use flowclass::{FlowKey, FlowTable};
//!
//! let mut table = FlowTable::new(256, 1024);
//! let key = FlowKey { src: 0x0a000001, dst: 0x0a000002, src_port: 4242, dst_port: 80, protocol: 6 };
//! assert_eq!(table.process(key, 100), Some(1)); // first packet: new flow
//! assert_eq!(table.process(key, 40), Some(2));  // second packet, same flow
//! assert_eq!(table.flow_count(), 1);
//! ```

use nettrace::ip::{proto, Ipv4Header, TransportPorts};
use nettrace::TraceError;

pub mod layout;

/// The classification 5-tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FlowKey {
    /// Source address (host order).
    pub src: u32,
    /// Destination address (host order).
    pub dst: u32,
    /// Source port (0 for port-less protocols).
    pub src_port: u16,
    /// Destination port (0 for port-less protocols).
    pub dst_port: u16,
    /// Transport protocol number.
    pub protocol: u8,
}

impl FlowKey {
    /// Extracts the 5-tuple from a layer-3 packet. Non-first fragments
    /// carry no transport header, so their ports are zero.
    ///
    /// # Errors
    ///
    /// Fails if the bytes do not begin with a valid IPv4 header.
    pub fn from_l3(l3: &[u8]) -> Result<FlowKey, TraceError> {
        let header = Ipv4Header::parse(l3)?;
        let fragment = header.flags_frag & 0x1fff != 0;
        let ports = if !fragment && l3.len() >= header.header_len() {
            TransportPorts::parse(header.protocol, &l3[header.header_len()..])
        } else {
            TransportPorts::default()
        };
        Ok(FlowKey {
            src: header.src_u32(),
            dst: header.dst_u32(),
            src_port: ports.src_port,
            dst_port: ports.dst_port,
            protocol: header.protocol,
        })
    }

    /// Source and destination ports packed as the application stores them
    /// (`src_port` in the high half-word).
    pub fn ports_word(&self) -> u32 {
        (u32::from(self.src_port) << 16) | u32::from(self.dst_port)
    }

    /// The classification hash — bit-for-bit the computation the NP32
    /// application performs (shifts, xors, one multiply).
    pub fn hash(&self) -> u32 {
        let mut h = self.src;
        h ^= self.dst.rotate_left(16);
        h ^= self.ports_word();
        h = h.wrapping_mul(0x9e37_79b1);
        h ^= h >> 17;
        h ^= u32::from(self.protocol);
        h
    }

    /// The bucket index for a table with `buckets` buckets (power of two).
    pub fn bucket(&self, buckets: u32) -> u32 {
        debug_assert!(buckets.is_power_of_two());
        self.hash() & (buckets - 1)
    }

    /// Whether this protocol carries ports the classifier can use.
    pub fn has_ports(&self) -> bool {
        self.protocol == proto::TCP || self.protocol == proto::UDP
    }
}

/// Per-flow state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowState {
    /// The flow's 5-tuple.
    pub key: FlowKey,
    /// Packets seen.
    pub packets: u32,
    /// Bytes seen (sum of IP total lengths).
    pub bytes: u32,
}

/// The golden-model flow table: hash buckets with head-insertion chains,
/// identical to the simulated-memory layout in [`layout`].
#[derive(Debug, Clone)]
pub struct FlowTable {
    buckets: Vec<Option<usize>>,            // head index into `nodes`
    nodes: Vec<(FlowState, Option<usize>)>, // (state, next)
    capacity: usize,
}

impl FlowTable {
    /// Creates a table with `buckets` buckets (power of two) and room for
    /// `capacity` flows.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is not a power of two.
    pub fn new(buckets: u32, capacity: usize) -> FlowTable {
        assert!(buckets.is_power_of_two(), "bucket count must be 2^n");
        FlowTable {
            buckets: vec![None; buckets as usize],
            nodes: Vec::with_capacity(capacity.min(4096)),
            capacity,
        }
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> u32 {
        self.buckets.len() as u32
    }

    /// Number of distinct flows seen.
    pub fn flow_count(&self) -> usize {
        self.nodes.len()
    }

    /// Classifies one packet: finds or creates the flow and updates its
    /// counters. Returns the flow's packet count after the update
    /// (`Some(1)` means a fresh flow), or `None` if the node pool is
    /// exhausted — the same observable the NP32 application returns in
    /// `a0`.
    pub fn process(&mut self, key: FlowKey, ip_bytes: u32) -> Option<u32> {
        let bucket = key.bucket(self.bucket_count()) as usize;
        let mut cursor = self.buckets[bucket];
        while let Some(i) = cursor {
            let (state, next) = &mut self.nodes[i];
            if state.key == key {
                state.packets += 1;
                state.bytes = state.bytes.wrapping_add(ip_bytes);
                return Some(state.packets);
            }
            cursor = *next;
        }
        if self.nodes.len() >= self.capacity {
            return None;
        }
        // Head insertion, like the application.
        let head = self.buckets[bucket];
        self.nodes.push((
            FlowState {
                key,
                packets: 1,
                bytes: ip_bytes,
            },
            head,
        ));
        self.buckets[bucket] = Some(self.nodes.len() - 1);
        Some(1)
    }

    /// Looks a flow up without modifying it.
    pub fn get(&self, key: &FlowKey) -> Option<&FlowState> {
        let bucket = key.bucket(self.bucket_count()) as usize;
        let mut cursor = self.buckets[bucket];
        while let Some(i) = cursor {
            let (state, next) = &self.nodes[i];
            if state.key == *key {
                return Some(state);
            }
            cursor = *next;
        }
        None
    }

    /// Iterates over all flows in creation order.
    pub fn iter(&self) -> impl Iterator<Item = &FlowState> {
        self.nodes.iter().map(|(s, _)| s)
    }

    /// The length of the chain in `bucket` — chain-length distribution is
    /// what drives the application's instruction-count variation.
    pub fn chain_len(&self, bucket: u32) -> usize {
        let mut n = 0;
        let mut cursor = self.buckets[bucket as usize];
        while let Some(i) = cursor {
            n += 1;
            cursor = self.nodes[i].1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u32) -> FlowKey {
        FlowKey {
            src: n,
            dst: !n,
            src_port: (n & 0xffff) as u16,
            dst_port: 80,
            protocol: proto::TCP,
        }
    }

    #[test]
    fn new_and_existing_flows() {
        let mut t = FlowTable::new(64, 100);
        assert_eq!(t.process(key(1), 40), Some(1));
        assert_eq!(t.process(key(2), 40), Some(1));
        assert_eq!(t.process(key(1), 60), Some(2));
        assert_eq!(t.flow_count(), 2);
        let s = t.get(&key(1)).unwrap();
        assert_eq!(s.packets, 2);
        assert_eq!(s.bytes, 100);
        assert!(t.get(&key(3)).is_none());
    }

    #[test]
    fn chains_resolve_collisions() {
        let mut t = FlowTable::new(1, 100); // everything collides
        for n in 0..50 {
            assert_eq!(t.process(key(n), 1), Some(1));
        }
        assert_eq!(t.chain_len(0), 50);
        for n in 0..50 {
            assert_eq!(t.process(key(n), 1), Some(2), "flow {n}");
        }
        assert_eq!(t.flow_count(), 50);
    }

    #[test]
    fn capacity_exhaustion_returns_none() {
        let mut t = FlowTable::new(8, 2);
        assert_eq!(t.process(key(1), 1), Some(1));
        assert_eq!(t.process(key(2), 1), Some(1));
        assert_eq!(t.process(key(3), 1), None);
        // Existing flows still update.
        assert_eq!(t.process(key(1), 1), Some(2));
    }

    #[test]
    fn hash_differs_across_tuple_fields() {
        let base = key(7);
        let mut other = base;
        other.dst_port = 443;
        assert_ne!(base.hash(), other.hash());
        let mut other = base;
        other.protocol = proto::UDP;
        assert_ne!(base.hash(), other.hash());
        let mut other = base;
        other.src ^= 1;
        assert_ne!(base.hash(), other.hash());
    }

    #[test]
    fn key_from_packet_bytes() {
        use nettrace::synth::{SyntheticTrace, TraceProfile};
        let mut trace = SyntheticTrace::new(TraceProfile::cos(), 4);
        for _ in 0..100 {
            let p = trace.next_packet();
            let k = FlowKey::from_l3(p.l3()).unwrap();
            let h = Ipv4Header::parse(p.l3()).unwrap();
            assert_eq!(k.src, h.src_u32());
            assert_eq!(k.dst, h.dst_u32());
            if !k.has_ports() {
                assert_eq!(k.ports_word(), 0);
            }
        }
        assert!(FlowKey::from_l3(&[0u8; 3]).is_err());
    }

    #[test]
    #[should_panic(expected = "2^n")]
    fn bucket_count_must_be_power_of_two() {
        let _ = FlowTable::new(12, 10);
    }
}
