//! Simulated-memory layout of the flow table for the NP32 application.
//!
//! ```text
//! header (at image base):
//!   +0   bucket-array pointer
//!   +4   free-node pointer (bump allocator cursor)
//!   +8   pool end (exclusive; equal means exhausted)
//!   +12  key staging buffer (16 bytes: src, dst, ports, proto) — the
//!        application assembles the 5-tuple here before hashing, like the
//!        C implementation the paper measures
//! bucket array: `buckets` word-sized chain heads (0 = empty)
//! node pool (32-byte nodes):
//!   +0 src  +4 dst  +8 ports  +12 proto
//!   +16 packet count  +20 byte count  +24 next pointer  +28 (pad)
//! ```

use npsim::Memory;

/// `.equ` constants shared with the flow-classification assembly source.
pub const LAYOUT_EQUS: &str = "\
        .equ FC_HDR_BUCKETS, 0
        .equ FC_HDR_FREE, 4
        .equ FC_HDR_POOL_END, 8
        .equ FC_HDR_KEYBUF, 12
        .equ FC_KEY_SRC, 0
        .equ FC_KEY_DST, 4
        .equ FC_KEY_PORTS, 8
        .equ FC_KEY_PROTO, 12
        .equ FC_NODE_SRC, 0
        .equ FC_NODE_DST, 4
        .equ FC_NODE_PORTS, 8
        .equ FC_NODE_PROTO, 12
        .equ FC_NODE_PKTS, 16
        .equ FC_NODE_BYTES, 20
        .equ FC_NODE_NEXT, 24
        .equ FC_NODE_SIZE, 32
";

/// Size of one pool node in bytes.
pub const NODE_SIZE: u32 = 32;

/// An initialized flow-table image in simulated memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowImage {
    /// Header address.
    pub header: u32,
    /// Bucket array address.
    pub buckets_base: u32,
    /// Bucket count (power of two).
    pub buckets: u32,
    /// Node pool base.
    pub pool_base: u32,
    /// First address past the image.
    pub end: u32,
    /// Node capacity.
    pub capacity: u32,
}

impl FlowImage {
    /// Lays an empty flow table out at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is not a power of two.
    pub fn init(mem: &mut Memory, base: u32, buckets: u32, capacity: u32) -> FlowImage {
        assert!(buckets.is_power_of_two(), "bucket count must be 2^n");
        let header = base;
        let buckets_base = header + 32;
        let pool_base = buckets_base + 4 * buckets;
        let end = pool_base + NODE_SIZE * capacity;

        mem.write_u32(header, buckets_base);
        mem.write_u32(header + 4, pool_base); // free pointer
        mem.write_u32(header + 8, end); // pool end
        for i in 0..buckets {
            mem.write_u32(buckets_base + 4 * i, 0);
        }
        FlowImage {
            header,
            buckets_base,
            buckets,
            pool_base,
            end,
            capacity,
        }
    }

    /// Reads the number of allocated flow nodes back out of memory.
    pub fn flows_allocated(&self, mem: &Memory) -> u32 {
        (mem.read_u32(self.header + 4) - self.pool_base) / NODE_SIZE
    }

    /// Reads a flow node's `(packets, bytes)` by walking the image — a
    /// host-side reference used by the equivalence tests.
    pub fn find_flow(&self, mem: &Memory, key: &crate::FlowKey) -> Option<(u32, u32)> {
        let bucket = key.bucket(self.buckets);
        let mut node = mem.read_u32(self.buckets_base + 4 * bucket);
        while node != 0 {
            if mem.read_u32(node) == key.src
                && mem.read_u32(node + 4) == key.dst
                && mem.read_u32(node + 8) == key.ports_word()
                && mem.read_u32(node + 12) == u32::from(key.protocol)
            {
                return Some((mem.read_u32(node + 16), mem.read_u32(node + 20)));
            }
            node = mem.read_u32(node + 24);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlowKey;

    #[test]
    fn init_writes_empty_table() {
        let mut mem = Memory::new();
        let image = FlowImage::init(&mut mem, 0x2200_0000, 64, 100);
        assert_eq!(mem.read_u32(image.header), image.buckets_base);
        assert_eq!(mem.read_u32(image.header + 4), image.pool_base);
        assert_eq!(mem.read_u32(image.header + 8), image.end);
        assert_eq!(image.flows_allocated(&mem), 0);
        for i in 0..64 {
            assert_eq!(mem.read_u32(image.buckets_base + 4 * i), 0);
        }
        assert!(image.find_flow(&mem, &FlowKey::default()).is_none());
    }

    #[test]
    fn find_flow_walks_chains() {
        let mut mem = Memory::new();
        let image = FlowImage::init(&mut mem, 0x2200_0000, 4, 10);
        let key = FlowKey {
            src: 1,
            dst: 2,
            src_port: 3,
            dst_port: 4,
            protocol: 6,
        };
        // Hand-install a node the way the application would.
        let node = image.pool_base;
        mem.write_u32(node, key.src);
        mem.write_u32(node + 4, key.dst);
        mem.write_u32(node + 8, key.ports_word());
        mem.write_u32(node + 12, u32::from(key.protocol));
        mem.write_u32(node + 16, 5);
        mem.write_u32(node + 20, 500);
        mem.write_u32(node + 24, 0);
        mem.write_u32(image.buckets_base + 4 * key.bucket(4), node);
        mem.write_u32(image.header + 4, node + NODE_SIZE);

        assert_eq!(image.find_flow(&mem, &key), Some((5, 500)));
        assert_eq!(image.flows_allocated(&mem), 1);
        let mut other = key;
        other.src = 9;
        assert!(image.find_flow(&mem, &other).is_none());
    }

    #[test]
    #[should_panic(expected = "2^n")]
    fn buckets_validated() {
        let mut mem = Memory::new();
        let _ = FlowImage::init(&mut mem, 0, 12, 4);
    }
}
