//! A [`Lane`]: one preallocated packet pool plus a pair of SPSC rings
//! moving slot indices between a producer and exactly one worker.
//!
//! ```text
//!             in-ring (filled slots)
//!   producer ─────────────────────────▶ worker
//!      ▲                                  │
//!      └──────────────────────────────────┘
//!             free-ring (empty slots)
//! ```
//!
//! The pool is a fixed array of mbuf-style slots, each holding a
//! [`Packet`] whose `data` buffer is retained across refills (after
//! warm-up the steady state allocates nothing). A slot index is a linear
//! token: the free-ring starts holding every index, the producer pops
//! one to fill a slot, pushes it onto the in-ring, the worker dequeues a
//! burst, borrows [`PacketView`]s from the slots, and pushes the indices
//! back onto the free-ring on retire. When the free-ring is empty the
//! pool is exhausted — the producer *drops and counts* instead of
//! waiting (run-to-completion appliances shed load; they do not stall
//! the wire). See `DESIGN.md` ("Live ingestion") for why a `PacketView`
//! can never outlive its slot reservation.

use std::cell::UnsafeCell;
use std::ops::Deref;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use nettrace::{LinkType, Packet, Timestamp};

use crate::ring::{self, Consumer, Producer};

/// Largest burst a worker dequeues in one call, following the DPDK
/// l2fwd convention (`MAX_PKT_BURST == 32`).
pub const MAX_BURST: usize = 32;

/// Initial capacity reserved for each pool slot's packet buffer. Large
/// enough for the paper traces' snapped captures; bigger packets simply
/// grow their slot once and keep the larger buffer thereafter.
const SLOT_DATA_CAPACITY: usize = 2048;

/// One pool slot: the global packet index stamped at offer time plus the
/// packet bytes themselves.
struct Mbuf {
    index: u64,
    packet: Packet,
}

struct Pool {
    slots: Box<[UnsafeCell<Mbuf>]>,
}

// SAFETY: a slot is only accessed by the current holder of its index
// token, and token hand-off happens through the SPSC rings whose
// Release/Acquire pairs order the accesses (see `ring` module docs and
// the crate-level ownership protocol).
unsafe impl Sync for Pool {}
unsafe impl Send for Pool {}

/// Shared, exactly-counted lane statistics. Increments are `Relaxed`
/// (they order nothing); totals are exact once the producer and worker
/// threads have been joined.
#[derive(Clone)]
pub struct RingStats {
    inner: Arc<StatsInner>,
}

struct StatsInner {
    produced: AtomicU64,
    dropped: AtomicU64,
    retired: AtomicU64,
    closed: AtomicBool,
}

impl RingStats {
    /// Packets offered to the lane (accepted or dropped).
    pub fn produced(&self) -> u64 {
        self.inner.produced.load(Ordering::Relaxed)
    }

    /// Packets dropped because the pool was exhausted.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Packets the worker processed and recycled.
    pub fn retired(&self) -> u64 {
        self.inner.retired.load(Ordering::Relaxed)
    }
}

/// A producer/consumer pair over one pool — see the module docs.
pub struct Lane {
    /// The producer half; hand to the ingestion thread.
    pub producer: LaneProducer,
    /// The consumer half; hand to the worker thread.
    pub consumer: LaneConsumer,
}

/// Creates a lane whose pool (and both rings) hold `capacity` slots.
///
/// # Panics
///
/// If `capacity` is zero or not a power of two.
pub fn lane(capacity: usize) -> Lane {
    let pool = Arc::new(Pool {
        slots: (0..capacity)
            .map(|_| {
                UnsafeCell::new(Mbuf {
                    index: 0,
                    packet: Packet {
                        ts: Timestamp::default(),
                        orig_len: 0,
                        link: LinkType::Raw,
                        data: Vec::with_capacity(SLOT_DATA_CAPACITY),
                    },
                })
            })
            .collect(),
    });
    let stats = RingStats {
        inner: Arc::new(StatsInner {
            produced: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            retired: AtomicU64::new(0),
            closed: AtomicBool::new(false),
        }),
    };
    let (in_tx, in_rx) = ring::spsc(capacity);
    let (mut free_tx, free_rx) = ring::spsc(capacity);
    for slot in 0..capacity {
        free_tx
            .push(slot)
            .expect("free-ring capacity equals pool slots");
    }
    Lane {
        producer: LaneProducer {
            pool: Arc::clone(&pool),
            in_ring: in_tx,
            free_ring: free_rx,
            stats: stats.clone(),
        },
        consumer: LaneConsumer {
            pool,
            in_ring: in_rx,
            free_ring: free_tx,
            stats,
            pending: [0; MAX_BURST],
            pending_len: 0,
        },
    }
}

/// The fill side of a lane: pops free slots, copies packets in, and
/// publishes them to the worker.
pub struct LaneProducer {
    pool: Arc<Pool>,
    in_ring: Producer,
    free_ring: Consumer,
    stats: RingStats,
}

impl LaneProducer {
    /// Offers one packet. On success the packet bytes are copied into a
    /// pool slot (reusing its buffer) and published; on pool exhaustion
    /// the packet is counted as dropped and `false` is returned.
    pub fn offer(&mut self, index: u64, packet: &Packet) -> bool {
        self.stats.inner.produced.fetch_add(1, Ordering::Relaxed);
        let Some(slot) = self.free_ring.pop() else {
            self.stats.inner.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        };
        self.fill_and_publish(slot, index, packet);
        true
    }

    /// Offers one packet, spinning until a slot frees up instead of
    /// dropping. `should_abort` is polled while waiting; an abort counts
    /// the packet as dropped and returns `false`. This is the
    /// deterministic zero-drop mode (`--on-full wait`).
    pub fn offer_wait(
        &mut self,
        index: u64,
        packet: &Packet,
        should_abort: impl Fn() -> bool,
    ) -> bool {
        self.stats.inner.produced.fetch_add(1, Ordering::Relaxed);
        let mut spins = 0u32;
        let slot = loop {
            if let Some(slot) = self.free_ring.pop() {
                break slot;
            }
            if should_abort() {
                self.stats.inner.dropped.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            spins += 1;
            if spins.is_multiple_of(256) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        };
        self.fill_and_publish(slot, index, packet);
        true
    }

    fn fill_and_publish(&mut self, slot: usize, index: u64, packet: &Packet) {
        // SAFETY: we hold the slot's index token (just popped from the
        // free-ring), so no other thread touches this slot until we
        // publish the token through the in-ring below.
        unsafe {
            let mbuf = &mut *self.pool.slots[slot].get();
            mbuf.index = index;
            mbuf.packet.copy_from(packet);
        }
        self.in_ring
            .push(slot)
            .expect("in-ring capacity equals pool slots");
    }

    /// Signals end of input. Must be called after the final `offer`; the
    /// Release store pairs with the worker's Acquire in
    /// [`LaneConsumer::is_closed`], so a worker that observes the close
    /// *and then* finds the in-ring empty has seen every packet.
    pub fn close(&mut self) {
        self.stats.inner.closed.store(true, Ordering::Release);
    }

    /// Packets currently queued toward the worker (approximate).
    pub fn queued(&self) -> usize {
        self.in_ring.len()
    }

    /// This lane's statistics handle.
    pub fn stats(&self) -> RingStats {
        self.stats.clone()
    }
}

/// The drain side of a lane: dequeues bursts, lends out views, recycles
/// slots on retire.
pub struct LaneConsumer {
    pool: Arc<Pool>,
    in_ring: Consumer,
    free_ring: Producer,
    stats: RingStats,
    pending: [usize; MAX_BURST],
    pending_len: usize,
}

impl LaneConsumer {
    /// Dequeues up to `max` (≤ [`MAX_BURST`]) slots and returns how many
    /// are now pending. The previous burst must have been retired first.
    pub fn dequeue_burst(&mut self, max: usize) -> usize {
        debug_assert_eq!(
            self.pending_len, 0,
            "previous burst must be retired before dequeuing"
        );
        let max = max.clamp(1, MAX_BURST);
        self.pending_len = self.in_ring.pop_burst(&mut self.pending[..max]);
        self.pending_len
    }

    /// Borrows a zero-copy view of the `i`-th pending packet. The view
    /// borrows `self`, so it cannot outlive the burst: `retire_burst`
    /// takes `&mut self`, which the borrow checker refuses while any
    /// view is alive.
    pub fn packet(&self, i: usize) -> PacketView<'_> {
        assert!(i < self.pending_len, "packet index beyond current burst");
        // SAFETY: we hold the slot's index token (dequeued, not yet
        // retired); the producer's packet write happened-before our
        // dequeue via the in-ring's Release/Acquire pair.
        let mbuf = unsafe { &*self.pool.slots[self.pending[i]].get() };
        PacketView { mbuf }
    }

    /// Recycles every pending slot back to the pool and counts the burst
    /// as retired. Taking `&mut self` is what makes the pool safe: no
    /// [`PacketView`] can still be alive at this point.
    pub fn retire_burst(&mut self) {
        for i in 0..self.pending_len {
            self.free_ring
                .push(self.pending[i])
                .expect("free-ring capacity equals pool slots");
        }
        self.stats
            .inner
            .retired
            .fetch_add(self.pending_len as u64, Ordering::Relaxed);
        self.pending_len = 0;
    }

    /// Whether the producer has closed the lane. A `true` here followed
    /// by an *empty* dequeue means the lane is fully drained (the close
    /// store is Release-ordered after the final publish).
    pub fn is_closed(&self) -> bool {
        self.stats.inner.closed.load(Ordering::Acquire)
    }

    /// Packets currently queued toward this worker (approximate).
    pub fn occupancy(&self) -> usize {
        self.in_ring.len()
    }

    /// This lane's statistics handle.
    pub fn stats(&self) -> RingStats {
        self.stats.clone()
    }
}

/// A zero-copy, read-only borrow of a packet sitting in its pool slot.
/// Dereferences to [`Packet`]; lifetime-bound to the burst it came from.
pub struct PacketView<'a> {
    mbuf: &'a Mbuf,
}

impl PacketView<'_> {
    /// The global packet index stamped by the producer at offer time.
    pub fn index(&self) -> u64 {
        self.mbuf.index
    }
}

impl Deref for PacketView<'_> {
    type Target = Packet;

    fn deref(&self) -> &Packet {
        &self.mbuf.packet
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(fill: u8, len: usize) -> Packet {
        Packet::from_l3(Timestamp::new(fill as u32, 0), vec![fill; len])
    }

    #[test]
    fn offer_dequeue_retire_round_trip() {
        let Lane {
            mut producer,
            mut consumer,
        } = lane(8);
        for i in 0..5u64 {
            assert!(producer.offer(i, &packet(i as u8, 20 + i as usize)));
        }
        producer.close();

        let n = consumer.dequeue_burst(MAX_BURST);
        assert_eq!(n, 5);
        for i in 0..n {
            let view = consumer.packet(i);
            assert_eq!(view.index(), i as u64);
            assert_eq!(view.data, vec![i as u8; 20 + i]);
            assert_eq!(view.ts.sec, i as u32);
        }
        consumer.retire_burst();
        assert!(consumer.is_closed());
        assert_eq!(consumer.dequeue_burst(MAX_BURST), 0);
        consumer.retire_burst();

        let stats = consumer.stats();
        assert_eq!(stats.produced(), 5);
        assert_eq!(stats.dropped(), 0);
        assert_eq!(stats.retired(), 5);
    }

    /// Satellite: full-pool overload must drop exactly the overflow, and
    /// `produced == dropped + retired` must hold to the packet.
    #[test]
    fn exhausted_pool_drops_exactly_the_overflow() {
        let Lane {
            mut producer,
            mut consumer,
        } = lane(4);
        let p = packet(7, 40);
        let mut accepted = 0u64;
        for i in 0..10u64 {
            if producer.offer(i, &p) {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 4, "pool of 4 accepts exactly 4 with no drain");
        let stats = producer.stats();
        assert_eq!(stats.produced(), 10);
        assert_eq!(stats.dropped(), 6);

        // Drain one burst; exactly that many slots come back.
        assert_eq!(consumer.dequeue_burst(MAX_BURST), 4);
        consumer.retire_burst();
        for i in 10..12u64 {
            assert!(producer.offer(i, &p), "recycled slots accept again");
        }
        assert_eq!(stats.produced(), 12);
        assert_eq!(stats.dropped(), 6);
        assert_eq!(consumer.dequeue_burst(MAX_BURST), 2);
        consumer.retire_burst();
        assert_eq!(stats.retired(), 6);
        assert_eq!(stats.produced(), stats.dropped() + stats.retired());
    }

    /// Satellite: drain-on-EOF retires every accepted packet exactly
    /// once and leaks nothing — after the drain, every slot is back in
    /// the free-ring (provable by refilling the whole pool).
    #[test]
    fn drain_on_eof_neither_double_retires_nor_leaks() {
        const CAPACITY: usize = 8;
        const TOTAL: u64 = 1000;
        let Lane {
            mut producer,
            mut consumer,
        } = lane(CAPACITY);

        let worker = std::thread::spawn(move || {
            let mut seen = Vec::new();
            loop {
                let n = consumer.dequeue_burst(MAX_BURST);
                if n == 0 {
                    if consumer.is_closed() {
                        // Close is published after the final offer; one
                        // more dequeue observes anything racing the flag.
                        let n = consumer.dequeue_burst(MAX_BURST);
                        if n == 0 {
                            break;
                        }
                        for i in 0..n {
                            seen.push(consumer.packet(i).index());
                        }
                        consumer.retire_burst();
                        continue;
                    }
                    std::thread::yield_now();
                    continue;
                }
                for i in 0..n {
                    seen.push(consumer.packet(i).index());
                }
                consumer.retire_burst();
            }
            (consumer, seen)
        });

        let p = packet(1, 32);
        for i in 0..TOTAL {
            assert!(
                producer.offer_wait(i, &p, || false),
                "abort never requested"
            );
        }
        producer.close();

        let (mut consumer, seen) = worker.join().unwrap();
        // Exactly once, in order: no double retire, no lost packet.
        assert_eq!(seen.len() as u64, TOTAL);
        assert!(seen.iter().copied().eq(0..TOTAL));
        let stats = producer.stats();
        assert_eq!(stats.produced(), TOTAL);
        assert_eq!(stats.dropped(), 0);
        assert_eq!(stats.retired(), TOTAL);

        // No leak: every slot must be back in the free-ring, so the
        // producer can fill the entire pool again without a drop.
        for i in 0..CAPACITY as u64 {
            assert!(producer.offer(TOTAL + i, &p), "slot {i} leaked");
        }
        assert_eq!(consumer.dequeue_burst(MAX_BURST), CAPACITY);
        consumer.retire_burst();
    }

    /// Concurrent overload: with a slow consumer the identity
    /// `produced == dropped + retired` still holds exactly after join.
    #[test]
    fn overload_identity_holds_under_concurrency() {
        const TOTAL: u64 = 50_000;
        let Lane {
            mut producer,
            mut consumer,
        } = lane(16);

        let worker = std::thread::spawn(move || {
            let mut retired = 0u64;
            loop {
                let n = consumer.dequeue_burst(8);
                if n == 0 {
                    if consumer.is_closed() && consumer.dequeue_burst(8) == 0 {
                        break;
                    }
                    std::thread::yield_now();
                } else {
                    // Touch every packet so the borrow is real.
                    for i in 0..consumer_pending(&consumer) {
                        std::hint::black_box(consumer.packet(i).len());
                    }
                }
                retired += consumer_pending(&consumer) as u64;
                consumer.retire_burst();
            }
            retired
        });

        let p = packet(3, 64);
        for i in 0..TOTAL {
            producer.offer(i, &p);
        }
        producer.close();
        let retired = worker.join().unwrap();

        let stats = producer.stats();
        assert_eq!(stats.produced(), TOTAL);
        assert_eq!(stats.retired(), retired);
        assert_eq!(stats.produced(), stats.dropped() + stats.retired());
        assert!(stats.retired() > 0, "some packets must get through");
    }

    fn consumer_pending(consumer: &LaneConsumer) -> usize {
        consumer.pending_len
    }

    #[test]
    fn offer_wait_abort_counts_as_drop() {
        let Lane { mut producer, .. } = lane(2);
        let p = packet(9, 16);
        assert!(producer.offer(0, &p));
        assert!(producer.offer(1, &p));
        // Pool full, nobody draining: the abort predicate fires.
        assert!(!producer.offer_wait(2, &p, || true));
        let stats = producer.stats();
        assert_eq!(stats.produced(), 3);
        assert_eq!(stats.dropped(), 1);
    }

    #[test]
    #[should_panic(expected = "beyond current burst")]
    fn packet_view_beyond_burst_panics() {
        let Lane {
            mut producer,
            mut consumer,
        } = lane(4);
        producer.offer(0, &packet(1, 8));
        assert_eq!(consumer.dequeue_burst(MAX_BURST), 1);
        let _ = consumer.packet(1);
    }
}
