//! Lock-free live-ingestion primitives: SPSC rings over a preallocated
//! mbuf-style packet pool.
//!
//! Every path into the simulator used to start from a file with
//! backpressure: the reader stalls when workers fall behind, so the
//! benches measured file replay, not sustained load. A real packet
//! appliance does the opposite — a fixed pool of buffers is filled by
//! the NIC, workers drain them in bursts, and when the pool is exhausted
//! the packet is *dropped and counted*, never stalled. This crate
//! provides that shape (DPDK l2fwd-style) in safe-to-use pieces:
//!
//! * [`ring`] — a wait-free single-producer/single-consumer ring of slot
//!   indices with cache-line-padded head/tail, power-of-two capacity,
//!   and Acquire/Release publication.
//! * [`pool`] — a [`Lane`](pool::Lane): one preallocated packet pool
//!   plus an in-ring (producer → worker) and a free-ring (worker →
//!   producer) whose tokens are pool slot indices. Workers borrow
//!   zero-copy [`PacketView`](pool::PacketView)s from pool slots and
//!   recycle them on retire; overload is a counted drop.
//! * [`pacer`] — paced replay ([`RateSpec`]: a packets/sec target or
//!   `max`) for driving a lane from a trace at a chosen offered load.
//!
//! ## Ownership protocol
//!
//! A slot index is a *linear token*: at any instant exactly one side
//! holds it (the producer after popping it from the free-ring, a ring
//! while it is queued, or the consumer between dequeue and retire). The
//! holder alone may touch the pool slot. Publication is by the ring
//! itself: the producer's packet write *happens-before* the consumer's
//! read because pushing the token is a Release store of the ring tail
//! and popping it is an Acquire load; recycling is the mirror image
//! through the free-ring. See `DESIGN.md` ("Live ingestion") for the
//! full safety argument.

pub mod pacer;
pub mod pool;
pub mod ring;

pub use pacer::{Pacer, RateError, RateSpec};
pub use pool::{lane, Lane, LaneConsumer, LaneProducer, PacketView, RingStats, MAX_BURST};
