//! Paced replay: offer packets at a target rate instead of as fast as
//! the source can be decoded.
//!
//! A lab replay at `max` measures the pipeline's ceiling; a paced replay
//! at a chosen packets/sec measures behaviour *under a specific offered
//! load* — the regime where drop counters mean something. The pacer is
//! absolute-schedule based (packet `n` is due at `n / rate` seconds
//! after start), so short stalls are caught up rather than accumulated
//! as drift, matching how hardware traffic generators pace.

use std::fmt;
use std::time::{Duration, Instant};

/// Sleep when the pacer is further ahead of schedule than this;
/// spin-wait for anything shorter. OS sleep granularity is about a
/// millisecond, so sleeping for less would overshoot the schedule.
const SLEEP_THRESHOLD: Duration = Duration::from_micros(500);

/// The offered-load target for a replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateSpec {
    /// No pacing: offer packets as fast as the source decodes.
    Max,
    /// Offer packets at this many packets per second.
    Pps(u64),
}

impl RateSpec {
    /// Parses `max` or a positive packets/sec count.
    pub fn parse(s: &str) -> Result<RateSpec, RateError> {
        if s.eq_ignore_ascii_case("max") {
            return Ok(RateSpec::Max);
        }
        match s.parse::<u64>() {
            Ok(0) | Err(_) => Err(RateError {
                value: s.to_string(),
            }),
            Ok(pps) => Ok(RateSpec::Pps(pps)),
        }
    }
}

impl fmt::Display for RateSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RateSpec::Max => write!(f, "max"),
            RateSpec::Pps(pps) => write!(f, "{pps}"),
        }
    }
}

/// A malformed rate; carries the offending value verbatim so error
/// messages can name it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RateError {
    value: String,
}

impl RateError {
    /// The rejected input, verbatim.
    pub fn value(&self) -> &str {
        &self.value
    }
}

impl fmt::Display for RateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bad rate `{}` (expected a packets/sec count or `max`)",
            self.value
        )
    }
}

impl std::error::Error for RateError {}

/// Holds a replay to a [`RateSpec`] schedule. Call [`pace`](Pacer::pace)
/// once per packet *before* offering it.
pub struct Pacer {
    rate: RateSpec,
    started: Option<Instant>,
    sent: u64,
}

impl Pacer {
    /// Creates a pacer for the given rate.
    pub fn new(rate: RateSpec) -> Pacer {
        Pacer {
            rate,
            started: None,
            sent: 0,
        }
    }

    /// Blocks until the next packet is due. At [`RateSpec::Max`] this is
    /// a counter bump; at a pps target it sleeps while far ahead of the
    /// absolute schedule and spins for the final stretch.
    pub fn pace(&mut self) {
        let RateSpec::Pps(pps) = self.rate else {
            self.sent += 1;
            return;
        };
        let started = *self.started.get_or_insert_with(Instant::now);
        // Packet `sent` is due at sent/pps seconds after start; u128
        // keeps the product exact out past 10^19 packet-nanoseconds.
        let due_ns = (self.sent as u128 * 1_000_000_000) / pps as u128;
        loop {
            let elapsed_ns = started.elapsed().as_nanos();
            if elapsed_ns >= due_ns {
                break;
            }
            let ahead = Duration::from_nanos((due_ns - elapsed_ns) as u64);
            if ahead > SLEEP_THRESHOLD {
                std::thread::sleep(ahead - SLEEP_THRESHOLD / 2);
            } else {
                std::hint::spin_loop();
            }
        }
        self.sent += 1;
    }

    /// Packets paced so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_max_and_pps() {
        assert_eq!(RateSpec::parse("max"), Ok(RateSpec::Max));
        assert_eq!(RateSpec::parse("MAX"), Ok(RateSpec::Max));
        assert_eq!(RateSpec::parse("250000"), Ok(RateSpec::Pps(250_000)));
    }

    #[test]
    fn rejects_malformed_rates_naming_the_value() {
        for bad in ["0", "-5", "fast", "1e6", ""] {
            let err = RateSpec::parse(bad).unwrap_err();
            assert_eq!(err.value(), bad);
            assert!(
                err.to_string().contains(&format!("`{bad}`")),
                "message must quote the offending value: {err}"
            );
        }
    }

    #[test]
    fn display_round_trips() {
        for spec in [RateSpec::Max, RateSpec::Pps(1234)] {
            assert_eq!(RateSpec::parse(&spec.to_string()), Ok(spec));
        }
    }

    #[test]
    fn max_rate_never_blocks() {
        let mut pacer = Pacer::new(RateSpec::Max);
        let start = Instant::now();
        for _ in 0..100_000 {
            pacer.pace();
        }
        assert_eq!(pacer.sent(), 100_000);
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn paced_replay_approximates_the_target_rate() {
        // 10k packets at 100k pps should take right around 100 ms.
        let mut pacer = Pacer::new(RateSpec::Pps(100_000));
        let start = Instant::now();
        for _ in 0..10_000 {
            pacer.pace();
        }
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(95),
            "finished too fast: {elapsed:?}"
        );
        assert!(
            elapsed < Duration::from_millis(400),
            "finished too slow: {elapsed:?}"
        );
    }
}
