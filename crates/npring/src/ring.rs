//! A wait-free single-producer/single-consumer ring of `usize` tokens.
//!
//! The layout is the classic DPDK/l2fwd shape:
//!
//! * power-of-two capacity, so positions wrap with a mask and the
//!   head/tail counters can be free-running (full vs. empty needs no
//!   wasted slot and no wrap handling);
//! * the producer owns `tail`, the consumer owns `head`; each side keeps
//!   a *cached* copy of the other's counter and only re-reads the shared
//!   atomic when the cached value says the ring looks full/empty —
//!   the common-case push/pop touches one shared cache line, not two;
//! * `head` and `tail` live on separate cache lines ([`CachePadded`]) so
//!   the two sides never false-share;
//! * publication is Acquire/Release: the producer's slot write
//!   happens-before the consumer's read because the tail store is
//!   `Release` and the consumer's tail load is `Acquire`; symmetrically
//!   the consumer's head `Release` store guarantees its slot *reads*
//!   completed before the producer may overwrite the slot.
//!
//! The ring carries bare `usize` tokens (pool slot indices). The memory
//! being handed off — the pool slot the token names — rides on the same
//! Acquire/Release edges; see the crate docs for the ownership protocol.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Pads a value to a cache line so `head` and `tail` never false-share.
/// 64 bytes covers x86-64 and most aarch64 parts; on 128-byte-line
/// hardware the cost is one extra line of padding, not correctness.
#[repr(align(64))]
struct CachePadded<T>(T);

struct Shared {
    mask: usize,
    slots: Box<[UnsafeCell<usize>]>,
    /// Next position the consumer will pop (consumer-owned).
    head: CachePadded<AtomicUsize>,
    /// Next position the producer will fill (producer-owned).
    tail: CachePadded<AtomicUsize>,
}

// SAFETY: the slot cells are only ever written by the single producer at
// positions in `[head, tail)`'s complement and only read by the single
// consumer at positions in `[head, tail)`; the Acquire/Release pairs on
// `head`/`tail` order those accesses (see module docs). The `Producer`
// and `Consumer` halves are unique (no Clone), so "single" is enforced
// by ownership.
unsafe impl Sync for Shared {}
unsafe impl Send for Shared {}

/// The producer half of a ring. Not cloneable: SPSC by construction.
pub struct Producer {
    shared: Arc<Shared>,
    /// Producer's private copy of `tail` (it is the only writer).
    tail: usize,
    /// Stale-but-safe copy of the consumer's `head`.
    head_cache: usize,
}

/// The consumer half of a ring. Not cloneable: SPSC by construction.
pub struct Consumer {
    shared: Arc<Shared>,
    /// Consumer's private copy of `head` (it is the only writer).
    head: usize,
    /// Stale-but-safe copy of the producer's `tail`.
    tail_cache: usize,
}

/// Creates an SPSC ring with `capacity` slots.
///
/// # Panics
///
/// If `capacity` is zero or not a power of two (the mask trick, and with
/// it the free-running counters, requires it).
pub fn spsc(capacity: usize) -> (Producer, Consumer) {
    assert!(
        capacity.is_power_of_two(),
        "ring capacity must be a power of two, got {capacity}"
    );
    let slots: Box<[UnsafeCell<usize>]> = (0..capacity).map(|_| UnsafeCell::new(0)).collect();
    let shared = Arc::new(Shared {
        mask: capacity - 1,
        slots,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
    });
    (
        Producer {
            shared: Arc::clone(&shared),
            tail: 0,
            head_cache: 0,
        },
        Consumer {
            shared,
            head: 0,
            tail_cache: 0,
        },
    )
}

impl Producer {
    /// Slots the ring can hold.
    pub fn capacity(&self) -> usize {
        self.shared.mask + 1
    }

    /// Pushes one token; `Err(token)` if the ring is full. Wait-free: one
    /// slot write and one Release store on the fast path, plus at most
    /// one Acquire re-read of `head` when the cached copy looks full.
    pub fn push(&mut self, token: usize) -> Result<(), usize> {
        let capacity = self.shared.mask + 1;
        if self.tail.wrapping_sub(self.head_cache) == capacity {
            // Looks full through the stale cache; re-read the truth. The
            // Acquire pairs with the consumer's Release head store, so
            // every slot read the consumer did before freeing those
            // positions happened-before our upcoming overwrite.
            self.head_cache = self.shared.head.0.load(Ordering::Acquire);
            if self.tail.wrapping_sub(self.head_cache) == capacity {
                return Err(token);
            }
        }
        // SAFETY: position `tail` is outside `[head, tail)`, so the
        // consumer is not reading it; we are the only producer.
        unsafe {
            *self.shared.slots[self.tail & self.shared.mask].get() = token;
        }
        // Release publishes the slot write above to the consumer's
        // Acquire tail load.
        self.tail = self.tail.wrapping_add(1);
        self.shared.tail.0.store(self.tail, Ordering::Release);
        Ok(())
    }

    /// Tokens currently queued (approximate: the consumer may be
    /// draining concurrently, so this is an upper bound at the instant of
    /// the call).
    pub fn len(&self) -> usize {
        self.tail
            .wrapping_sub(self.shared.head.0.load(Ordering::Acquire))
    }

    /// Whether the ring is empty (same staleness caveat as [`len`](Producer::len)).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Consumer {
    /// Slots the ring can hold.
    pub fn capacity(&self) -> usize {
        self.shared.mask + 1
    }

    /// Pops one token, or `None` if the ring is empty.
    pub fn pop(&mut self) -> Option<usize> {
        let mut burst = [0usize; 1];
        if self.pop_burst(&mut burst) == 1 {
            Some(burst[0])
        } else {
            None
        }
    }

    /// Pops up to `out.len()` tokens in one go (l2fwd `rx_burst` style)
    /// and returns how many were written to the front of `out`. One
    /// Acquire load amortized over the whole burst, one Release store to
    /// free all the positions at once.
    pub fn pop_burst(&mut self, out: &mut [usize]) -> usize {
        let mut available = self.tail_cache.wrapping_sub(self.head);
        if available == 0 {
            // Looks empty through the stale cache; re-read. Acquire
            // pairs with the producer's Release tail store: every slot
            // write up to the loaded tail is now visible.
            self.tail_cache = self.shared.tail.0.load(Ordering::Acquire);
            available = self.tail_cache.wrapping_sub(self.head);
            if available == 0 {
                return 0;
            }
        }
        let n = available.min(out.len());
        for (i, slot) in out.iter_mut().enumerate().take(n) {
            // SAFETY: positions `[head, head + n)` are inside
            // `[head, tail)` — published by the producer, not yet freed.
            *slot =
                unsafe { *self.shared.slots[self.head.wrapping_add(i) & self.shared.mask].get() };
        }
        // Release: our slot reads above happen-before the producer's
        // next overwrite of these positions.
        self.head = self.head.wrapping_add(n);
        self.shared.head.0.store(self.head, Ordering::Release);
        n
    }

    /// Tokens currently queued (approximate: the producer may be pushing
    /// concurrently, so this is a lower bound at the instant of the
    /// call).
    pub fn len(&self) -> usize {
        self.shared
            .tail
            .0
            .load(Ordering::Acquire)
            .wrapping_sub(self.head)
    }

    /// Whether the ring is empty (same staleness caveat as [`len`](Consumer::len)).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_capacity_bound() {
        let (mut tx, mut rx) = spsc(8);
        for i in 0..8 {
            tx.push(i).unwrap();
        }
        assert_eq!(tx.push(99), Err(99), "ninth push must report full");
        let mut out = [0usize; 32];
        assert_eq!(rx.pop_burst(&mut out), 8);
        assert_eq!(&out[..8], &[0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(rx.pop_burst(&mut out), 0);
    }

    #[test]
    fn burst_is_capped_by_out_slice() {
        let (mut tx, mut rx) = spsc(16);
        for i in 0..10 {
            tx.push(i).unwrap();
        }
        let mut out = [0usize; 4];
        assert_eq!(rx.pop_burst(&mut out), 4);
        assert_eq!(out, [0, 1, 2, 3]);
        assert_eq!(rx.pop_burst(&mut out), 4);
        assert_eq!(out, [4, 5, 6, 7]);
        assert_eq!(rx.pop_burst(&mut out), 2);
        assert_eq!(&out[..2], &[8, 9]);
    }

    #[test]
    fn wraps_many_times_without_losing_tokens() {
        let (mut tx, mut rx) = spsc(4);
        let mut next_push = 0usize;
        let mut next_pop = 0usize;
        let mut out = [0usize; 3];
        for _ in 0..1000 {
            while tx.push(next_push).is_ok() {
                next_push += 1;
            }
            // A stale tail cache may legally shorten the burst; only
            // order and continuity are guaranteed.
            let n = rx.pop_burst(&mut out);
            for &v in &out[..n] {
                assert_eq!(v, next_pop);
                next_pop += 1;
            }
        }
        while let Some(v) = rx.pop() {
            assert_eq!(v, next_pop);
            next_pop += 1;
        }
        assert_eq!(next_pop, next_push, "every pushed token must arrive");
        assert!(next_push >= 1000, "the ring must keep making progress");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_capacity_panics() {
        let _ = spsc(6);
    }

    /// Cross-thread FIFO integrity under real contention: one producer
    /// pushes a known sequence as fast as it can, one consumer drains in
    /// bursts with deliberate yields to vary interleavings. Every token
    /// must arrive exactly once, in order — a reordered or torn
    /// publication (the bug a wrong memory ordering causes) fails the
    /// sequence check.
    #[test]
    fn concurrent_spsc_preserves_the_sequence() {
        const TOKENS: usize = 200_000;
        for capacity in [1, 4, 64] {
            let (mut tx, mut rx) = spsc(capacity);
            std::thread::scope(|scope| {
                scope.spawn(move || {
                    let mut spins = 0u32;
                    for i in 0..TOKENS {
                        let mut v = i;
                        while let Err(back) = tx.push(v) {
                            v = back;
                            spins += 1;
                            if spins.is_multiple_of(64) {
                                std::thread::yield_now();
                            } else {
                                std::hint::spin_loop();
                            }
                        }
                    }
                });
                scope.spawn(move || {
                    let mut out = [0usize; 32];
                    let mut expected = 0usize;
                    let mut idle = 0u32;
                    while expected < TOKENS {
                        let n = rx.pop_burst(&mut out);
                        if n == 0 {
                            idle += 1;
                            if idle.is_multiple_of(128) {
                                std::thread::yield_now();
                            } else {
                                std::hint::spin_loop();
                            }
                            continue;
                        }
                        for &v in &out[..n] {
                            assert_eq!(v, expected, "capacity {capacity}");
                            expected += 1;
                        }
                    }
                    assert_eq!(rx.pop_burst(&mut out), 0, "capacity {capacity}");
                });
            });
        }
    }

    /// The len views from both halves stay within the ring's capacity
    /// and agree with the drained totals once quiescent.
    #[test]
    fn lengths_are_bounded_and_converge() {
        let (mut tx, mut rx) = spsc(8);
        for i in 0..5 {
            tx.push(i).unwrap();
        }
        assert_eq!(tx.len(), 5);
        assert_eq!(rx.len(), 5);
        let mut out = [0usize; 2];
        rx.pop_burst(&mut out);
        assert_eq!(rx.len(), 3);
        assert_eq!(tx.len(), 3);
        assert!(!rx.is_empty());
        while rx.pop().is_some() {}
        assert!(rx.is_empty() && tx.is_empty());
    }
}
