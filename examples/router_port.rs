//! A router-port scenario (paper Fig. 1): packets arriving at a port are
//! forwarded by an NP core running either forwarding application. This
//! example contrasts the two implementations on the same traffic — the
//! paper's headline result — and shows where the instruction-store
//! "sweet spot" sits for each (paper Fig. 8).

use nettrace::synth::{SyntheticTrace, TraceProfile};
use packetbench::analysis::TraceAnalysis;
use packetbench::apps::{App, AppId};
use packetbench::framework::{Detail, PacketBench, Verdict};
use packetbench::WorkloadConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let packets: usize = std::env::args()
        .nth(1)
        .and_then(|n| n.parse().ok())
        .unwrap_or(400);

    let config = WorkloadConfig::default();
    println!(
        "routing tables: radix {} prefixes, LC-trie {} prefixes",
        config.radix_routes, config.trie_routes
    );
    println!("traffic: {} packets of the MRA profile\n", packets);

    let mut results = Vec::new();
    for id in [AppId::Ipv4Radix, AppId::Ipv4Trie] {
        let app = App::build(id, &config)?;
        let mut bench = PacketBench::with_config(app, &config)?;
        let block_map = bench.block_map().clone();
        let mut analysis = TraceAnalysis::new(bench.app().image().program(), &block_map);
        let mut forwarded = 0u64;
        let mut port_histogram = std::collections::BTreeMap::<u32, u64>::new();

        let mut trace = SyntheticTrace::new(TraceProfile::mra(), 1234);
        for _ in 0..packets {
            let packet = trace.next_packet();
            let record = bench.process_verified(&packet, Detail::counts())?;
            if let Verdict::Forwarded(port) = record.verdict {
                forwarded += 1;
                *port_histogram.entry(port).or_default() += 1;
            }
            analysis.add(&block_map, &record);
        }

        let curve = analysis.coverage_curve();
        let sweet_spot = curve
            .iter()
            .find(|&&(_, c)| c >= 0.9)
            .map(|&(k, _)| k)
            .unwrap_or(curve.len());
        println!("== {} ==", id.name());
        println!("  forwarded:                {forwarded}/{packets}");
        println!(
            "  avg instructions/packet:  {:.0}",
            analysis.avg_instructions()
        );
        println!(
            "  avg memory accesses:      {:.0} packet + {:.0} non-packet",
            analysis.avg_packet_mem(),
            analysis.avg_non_packet_mem()
        );
        println!(
            "  static basic blocks:      {}, 90% packet coverage with {}",
            curve.len(),
            sweet_spot
        );
        println!(
            "  busiest output ports:     {:?}",
            port_histogram
                .iter()
                .map(|(p, n)| (*p, *n))
                .take(4)
                .collect::<Vec<_>>()
        );
        results.push((id, analysis.avg_instructions()));
        println!();
    }

    let (slow, fast) = (results[0].1, results[1].1);
    println!(
        "IPv4-radix costs {:.1}x the instructions of IPv4-trie on identical traffic —",
        slow / fast
    );
    println!("the paper's unoptimized-vs-optimized contrast (Table II).");
    Ok(())
}
