//! A measurement-infrastructure scenario (the paper's motivation for
//! TSA): anonymize a capture for publication. Packets flow through the
//! simulated TSA application; the anonymized records it collects are
//! written back out as a pcap file, and the prefix-preserving property is
//! demonstrated on the output.

use std::io::Write as _;

use nettrace::ip::Ipv4Header;
use nettrace::pcap::PcapWriter;
use nettrace::synth::{SyntheticTrace, TraceProfile};
use nettrace::{LinkType, Packet, Timestamp};
use packetbench::apps::{App, AppId};
use packetbench::framework::{Detail, PacketBench};
use packetbench::WorkloadConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let packets: usize = std::env::args()
        .nth(1)
        .and_then(|n| n.parse().ok())
        .unwrap_or(500);
    let out_path = std::env::temp_dir().join("packetbench_anonymized.pcap");

    let config = WorkloadConfig::default();
    let app = App::build(AppId::Tsa, &config)?;
    let mut bench = PacketBench::with_config(app, &config)?;

    let mut trace = SyntheticTrace::new(TraceProfile::odu(), 99);
    let mut pairs: Vec<(u32, u32)> = Vec::new(); // (original dst, anonymized dst)
    let mut out = Vec::new();
    let mut writer = PcapWriter::new(&mut out, LinkType::Raw, 65535)?;
    let mut total_instructions = 0u64;

    for i in 0..packets {
        let packet = trace.next_packet();
        let original = Ipv4Header::parse(packet.l3())?;
        let record = bench.process_verified(&packet, Detail::counts())?;
        total_instructions += record.stats.instret;

        // The application collects the anonymized header into its record
        // ring; re-emit it as an anonymized capture. The anonymized
        // destination is also the application's return value.
        let mut anon = packet.l3().to_vec();
        let anon_dst = record.return_value;
        anon[16..20].copy_from_slice(&anon_dst.to_be_bytes());
        pairs.push((original.dst_u32(), anon_dst));
        writer.write_packet(&Packet::from_l3(Timestamp::new(i as u32, 0), anon))?;
    }
    writer.into_inner().unwrap();
    std::fs::File::create(&out_path)?.write_all(&out)?;

    println!("anonymized {packets} packets -> {}", out_path.display());
    println!(
        "avg instructions per packet on the NP core: {:.1}",
        total_instructions as f64 / packets as f64
    );

    // Demonstrate prefix preservation on the emitted addresses.
    let mut preserved = 0u64;
    let mut compared = 0u64;
    for i in 0..pairs.len().min(100) {
        for j in 0..i {
            let (a, fa) = pairs[i];
            let (b, fb) = pairs[j];
            let before = (a ^ b).leading_zeros();
            let after = (fa ^ fb).leading_zeros();
            compared += 1;
            if before == after {
                preserved += 1;
            }
        }
    }
    println!(
        "prefix preservation: {preserved}/{compared} pairs share exactly their original prefix length"
    );
    assert_eq!(preserved, compared, "TSA must preserve prefixes");
    Ok(())
}
