//! Quickstart: run one application over a synthetic trace and print the
//! paper's headline per-packet statistics.
//!
//! ```text
//! cargo run --example quickstart [app] [trace] [packets]
//! cargo run --example quickstart radix MRA 200
//! ```

use nettrace::synth::{SyntheticTrace, TraceProfile};
use packetbench::analysis::TraceAnalysis;
use packetbench::apps::{App, AppId};
use packetbench::framework::{Detail, PacketBench};
use packetbench::WorkloadConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let app_id = args
        .first()
        .and_then(|a| AppId::by_name(a))
        .unwrap_or(AppId::Ipv4Trie);
    let profile = args
        .get(1)
        .and_then(|t| TraceProfile::by_name(t))
        .unwrap_or_else(TraceProfile::mra);
    let packets: usize = args.get(2).and_then(|n| n.parse().ok()).unwrap_or(200);

    println!("application: {app_id}");
    println!(
        "trace:       {} ({})",
        profile.name,
        profile.link_description()
    );
    println!("packets:     {packets}");
    println!();

    let config = WorkloadConfig::default();
    let app = App::build(app_id, &config)?;
    let mut bench = PacketBench::with_config(app, &config)?;
    let block_map = bench.block_map().clone();
    let mut analysis = TraceAnalysis::new(bench.app().image().program(), &block_map);

    let trace = SyntheticTrace::new(profile, 42);
    bench.run_trace(trace.take(packets), Detail::counts(), |_, record| {
        analysis.add(&block_map, &record);
    })?;

    println!(
        "avg instructions / packet:        {:8.1}",
        analysis.avg_instructions()
    );
    println!(
        "avg packet-memory accesses:       {:8.1}",
        analysis.avg_packet_mem()
    );
    println!(
        "avg non-packet-memory accesses:   {:8.1}",
        analysis.avg_non_packet_mem()
    );
    let hist = analysis.instruction_histogram();
    println!("instruction-count modes:");
    for (value, share) in hist.top_k(3) {
        println!(
            "  {value:>8} instructions  ({:5.2}% of packets)",
            share * 100.0
        );
    }
    if let (Some((min, _)), Some((max, _))) = (hist.min(), hist.max()) {
        println!("range: {min} ..= {max} instructions");
    }
    let curve = analysis.coverage_curve();
    if let Some(&(k, _)) = curve.iter().find(|&&(_, c)| c >= 0.9) {
        println!(
            "90% of packets covered by {k} of {} basic blocks",
            curve.len()
        );
    }
    Ok(())
}
