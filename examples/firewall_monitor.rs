//! A firewall-style monitoring scenario (the paper's motivating use for
//! flow classification): classify a mixed trace into flows, then report
//! the heavy hitters and the per-packet processing cost the NP core paid
//! for them — including how much more expensive flow-*creating* packets
//! are than flow-*updating* ones (the 156 vs 212 instruction modes of
//! paper Table V).

use nettrace::synth::{SyntheticTrace, TraceProfile};
use packetbench::apps::{App, AppId};
use packetbench::framework::{Detail, PacketBench, Verdict};
use packetbench::WorkloadConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let packets: usize = std::env::args()
        .nth(1)
        .and_then(|n| n.parse().ok())
        .unwrap_or(2000);

    let config = WorkloadConfig::default();
    let app = App::build(AppId::FlowClass, &config)?;
    let mut bench = PacketBench::with_config(app, &config)?;

    let mut trace = SyntheticTrace::new(TraceProfile::cos(), 7);
    let mut new_flow_cost = (0u64, 0u64); // (sum, count)
    let mut old_flow_cost = (0u64, 0u64);
    let mut dropped = 0u64;
    for _ in 0..packets {
        let packet = trace.next_packet();
        let record = bench.process_verified(&packet, Detail::counts())?;
        match record.verdict {
            Verdict::Dropped => dropped += 1,
            _ if record.return_value == 1 => {
                new_flow_cost.0 += record.stats.instret;
                new_flow_cost.1 += 1;
            }
            _ => {
                old_flow_cost.0 += record.stats.instret;
                old_flow_cost.1 += 1;
            }
        }
    }

    println!("packets processed:      {packets}");
    println!("new flows:              {}", new_flow_cost.1);
    println!("existing-flow packets:  {}", old_flow_cost.1);
    println!("pool-exhausted drops:   {dropped}");
    if new_flow_cost.1 > 0 && old_flow_cost.1 > 0 {
        let new_avg = new_flow_cost.0 as f64 / new_flow_cost.1 as f64;
        let old_avg = old_flow_cost.0 as f64 / old_flow_cost.1 as f64;
        println!("avg instructions, new flow:      {new_avg:7.1}");
        println!("avg instructions, existing flow: {old_avg:7.1}");
        println!(
            "creation premium:                {:6.1}%",
            100.0 * (new_avg / old_avg - 1.0)
        );
    }

    // Heavy hitters from the golden model mirror (kept in sync with the
    // simulated table by process_verified).
    println!("\ntop flows by packets (from the in-memory flow table):");
    println!("{:<44} {:>8} {:>10}", "flow", "packets", "bytes");
    // Re-walk simulated memory through the framework's app state: easiest
    // is to re-classify and read the golden table; here we reuse verify's
    // guarantee and read flows via the golden model embedded in App.
    // The app keeps its own state in simulated memory; for reporting we
    // re-run the trace against a fresh host-side table.
    let mut table = flowclass::FlowTable::new(config.flow_buckets, config.flow_capacity as usize);
    let mut trace = SyntheticTrace::new(TraceProfile::cos(), 7);
    for _ in 0..packets {
        let packet = trace.next_packet();
        let key = flowclass::FlowKey::from_l3(packet.l3())?;
        let h = nettrace::ip::Ipv4Header::parse(packet.l3())?;
        table.process(key, u32::from(h.total_len));
    }
    let mut flows: Vec<_> = table.iter().collect();
    flows.sort_by_key(|f| std::cmp::Reverse(f.packets));
    for f in flows.iter().take(10) {
        let k = f.key;
        println!(
            "{:<44} {:>8} {:>10}",
            format!(
                "{}.{}.{}.{}:{} -> {}.{}.{}.{}:{} proto {}",
                k.src >> 24,
                (k.src >> 16) & 255,
                (k.src >> 8) & 255,
                k.src & 255,
                k.src_port,
                k.dst >> 24,
                (k.dst >> 16) & 255,
                (k.dst >> 8) & 255,
                k.dst & 255,
                k.dst_port,
                k.protocol
            ),
            f.packets,
            f.bytes
        );
    }
    Ok(())
}
